//! `pbdmm` — command-line front end for the batch-dynamic maximal matcher.
//!
//! ```text
//! pbdmm gen er --n 1000 --m 4000 --seed 1 -o graph.hgr    # make a graph
//! pbdmm match graph.hgr                                   # static matching
//! pbdmm dynamic graph.hgr --batch 256 --order uniform     # replay a stream
//! pbdmm cover graph.hgr                                   # set cover view
//! pbdmm serve --producers 4 --wal trace.wal               # ingest service
//! pbdmm replay trace.wal                                  # rebuild from WAL
//! pbdmm daemon --port 0 --wal trace.wal                   # network daemon
//! pbdmm load --port 45231 --connections 4                 # wire load gen
//! ```
//!
//! Graph files are plain hyperedge lists (see `pbdmm::graph::io`): one edge
//! per line, whitespace-separated vertex ids, `#` comments.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pbdmm::graph::wal::{read_wal_file, WalMeta};
use pbdmm::graph::workload::{insert_then_delete, DeletionOrder};
use pbdmm::graph::{gen, io, Batch, EdgeId, Hypergraph};
use pbdmm::matching::baseline::{NaiveDynamic, RecomputeMatching};
use pbdmm::matching::checkpoint::Checkpoint;
use pbdmm::matching::driver::run_workload;
use pbdmm::matching::snapshot::{Snapshot, Snapshots};
use pbdmm::matching::verify::check_invariants;
use pbdmm::matching::MatchingSnapshot;
use pbdmm::net::daemon::{Daemon, DaemonConfig};
use pbdmm::net::load::{run_load, LoadConfig};
use pbdmm::net::Client;
use pbdmm::primitives::cost::CostMeter;
use pbdmm::primitives::obs::{Counter, Phase, Recorder};
use pbdmm::primitives::rng::SplitMix64;
use pbdmm::service::{
    detect_shards, recover_dir_with, recover_sharded_matching, replay_into, replay_setcover,
    shard_dir, CoalescePolicy, Done, RecoveryInfo, ServiceConfig, ServiceHandle, ServiceStats,
    ShardedStats, WalConfig, MAX_SHARDS,
};
use pbdmm::setcover::CoverSnapshot;
use pbdmm::{BatchDynamic, DynamicMatching, DynamicSetCover};
use pbdmm_bench::metrics;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pbdmm: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  pbdmm match <graph-file> [--seed S] [--threads T]
  pbdmm dynamic <graph-file> [--batch B] [--order uniform|fifo|lifo|clustered|degree]
                [--contender dynamic|recompute|naive|setcover] [--seed S] [--threads T]
  pbdmm cover <graph-file> [--seed S] [--threads T]
  pbdmm gen <er|hyper|powerlaw|star|bipartite> [--n N] [--m M] [--rank R] [--seed S] -o <file>
  pbdmm serve [--producers P] [--updates N] [--readers R] [--max-batch B]
              [--max-delay-us D] [--structure matching|setcover]
              [--wal PATH|none] [--wal-sync BOOL] [--checkpoint-every N]
              [--compare direct|none] [--shards K] [--seed S] [--threads T]
              [--profile [interval=N]]
  pbdmm replay <wal-file-or-dir> [--from-genesis BOOL] [--shards K] [--threads T]
              [--profile]
  pbdmm daemon [--port P] [--host H] [--max-connections C] [--max-inflight W]
               [--max-batch B] [--max-delay-us D] [--wal PATH|none]
               [--wal-sync BOOL] [--checkpoint-every N] [--shards K]
               [--seed S] [--threads T] [--profile [interval=N]]
  pbdmm load (--port P | --addr HOST:PORT) [--connections M] [--updates N]
             [--queries Q] [--shutdown BOOL] [--shards K] [--seed S] [--threads T]
             [--profile [interval=N]]

  serve drives a synthetic P-producer load through the batch-coalescing
  update service (ingress -> coalesce -> WAL -> apply -> snapshot) and
  reports throughput and per-update latency. Durable by default: each
  formed batch is appended to the WAL (a temp file unless --wal names
  one; --wal none disables) and fsynced (--wal-sync false for
  flush-only) before its tickets complete. --readers R (default 2; 0
  disables) runs R concurrent reader threads resolving point queries
  against the epoch-snapshot read path while writers run, reporting read
  throughput and snapshot-staleness percentiles. --compare direct (the
  default) runs the same load at the same durability as per-update
  singleton applies under a mutex — the group-commit comparison. replay
  rebuilds a structure from a recorded WAL and verifies its invariants;
  its final: line (epoch included) is byte-comparable with serve's.

  daemon binds a TCP listener (--port 0 picks an ephemeral port, printed
  on the 'daemon: listening on' line for scripting) and serves the wire
  protocol over the same coalescing service: every connection gets
  read-your-writes, WAL durability (durable by default, exactly like
  serve), and epoch-snapshot reads; admission control refuses work
  beyond --max-connections / --max-inflight with Overloaded errors
  instead of queueing without bound. It drains on a client Shutdown
  frame and prints a final: line byte-comparable with replay's. load
  drives a running daemon from M concurrent connections with serve's
  synthetic workload and prints the same report format, so in-process
  vs over-the-wire overhead is one diff away; --shutdown true sends a
  Shutdown frame when done (the CI loopback pipeline relies on it).

  --threads T sizes the work-stealing scheduler (a positive integer; omit
  the flag to use all cores; also settable process-wide via the
  PBDMM_THREADS environment variable).

  --checkpoint-every N (serve, daemon) switches the WAL to a segment
  directory: the log rotates and a checkpoint of the live structure is
  written after every >= N updates, and old segments compact away once a
  checkpoint covers them. replay accepts either a single WAL file or such
  a directory; for a directory it recovers the way a restarted daemon
  would — newest intact checkpoint plus tail segments, printing which
  checkpoint it started from — unless --from-genesis true forces a
  full-history replay. daemon pointed at an existing segment directory
  (--wal DIR) recovers from it and resumes appending.

  --shards K (serve, daemon; matching only) runs K matching shards behind
  one routing tier: each batch is split by the deterministic vertex
  partition (owner = minimum vertex id mod K), every shard keeps its own
  segmented WAL under <dir>/shard-0 .. shard-(K-1), and reads resolve
  against a per-shard snapshot at one global epoch. K=1 is byte-identical
  to the unsharded path. replay auto-detects the shard-0.. layout (or
  force it with --shards K) and recovers through the K-way merge onto a
  consistent cross-shard cut; --from-genesis works there too. load
  --shards K pins each connection's vertices to one shard, the traffic
  locality a partitioned deployment sees.

  --profile (serve, daemon, replay, load) turns on the per-phase
  profiler: where batch time went (plan, WAL append, apply with settle
  and snapshot-publish sub-phases, completion; plus frame decode and
  dispatch in the daemon) as count/total/share/p50/p99/max per phase,
  with batch-size and flush-cause counters, printed as a block at exit.
  --profile interval=N (serve, daemon, load) also prints a delta report
  every N seconds while running. load --profile scrapes the same table
  from the live daemon over the wire (the daemon itself must run with
  --profile, else load notes profiling is disabled). Off by default and
  free when off: disabled recorders are no-op guards (see
  PERFORMANCE.md for how to read the table).";

/// Minimal flag parser: `--key value` pairs after positional arguments.
struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            // `--profile` may stand alone (= `true`) or take a value
            // (`true`, `false`, `interval=N`); every other flag requires one.
            let value = if key == "profile" {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().expect("peeked"),
                    _ => "true".to_string(),
                }
            } else {
                it.next().ok_or_else(|| format!("--{key} needs a value"))?
            };
            flags.insert(key.to_string(), value);
        } else if a == "-o" {
            let value = it.next().ok_or("-o needs a value")?;
            flags.insert("out".to_string(), value);
        } else {
            positional.push(a);
        }
    }
    Ok(Args { positional, flags })
}

impl Args {
    fn flag<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key} {v:?}: {e}")),
        }
    }
}

/// What the shared `--profile` flag asked for: a recorder (disabled unless
/// the flag was given) and an optional interval for periodic deltas.
struct ProfileOpts {
    obs: Recorder,
    interval: Option<Duration>,
}

/// Parse `--profile` / `--profile true|false` / `--profile interval=N`
/// (N whole seconds between periodic delta reports).
fn profile_from_flags(args: &Args) -> Result<ProfileOpts, String> {
    let (on, interval) = match args.flags.get("profile").map(String::as_str) {
        None | Some("false") => (false, None),
        Some("true") => (true, None),
        Some(v) => {
            let secs: u64 = v
                .strip_prefix("interval=")
                .and_then(|n| n.parse().ok())
                .filter(|&n| n > 0)
                .ok_or_else(|| {
                    format!(
                        "--profile {v:?}: expected true, false, or interval=N \
                         (N a positive whole number of seconds)"
                    )
                })?;
            (true, Some(Duration::from_secs(secs)))
        }
    };
    Ok(ProfileOpts {
        obs: Recorder::enabled_if(on),
        interval,
    })
}

/// A background thread printing `profile [N]:` interval deltas of a
/// recorder every `every` until dropped (or [`ProfilePrinter::finish`]).
struct ProfilePrinter {
    stop: std::sync::Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProfilePrinter {
    /// Start printing interval deltas; `scrape` produces each cumulative
    /// report (a local snapshot for serve/daemon, a wire scrape for load).
    fn spawn(
        every: Duration,
        scrape: impl FnMut() -> Option<pbdmm::primitives::obs::ProfileReport> + Send + 'static,
    ) -> ProfilePrinter {
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        let mut scrape = scrape;
        let handle = std::thread::spawn(move || {
            let mut prev: Option<pbdmm::primitives::obs::ProfileReport> = None;
            let mut n = 0u64;
            // Sleep in short ticks so the final join is prompt.
            let tick = Duration::from_millis(25);
            let mut slept = Duration::ZERO;
            loop {
                if stop2.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(tick);
                slept += tick;
                if slept < every {
                    continue;
                }
                slept = Duration::ZERO;
                let Some(now) = scrape() else { continue };
                n += 1;
                let d = match &prev {
                    Some(p) => now.delta(p),
                    None => now.clone(),
                };
                print!("profile interval {n}:\n{}", d.render());
                prev = Some(now);
            }
        });
        ProfilePrinter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop and join the printer.
    fn finish(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Print the end-of-run cumulative profile block (no-op when disabled).
fn print_profile(obs: &Recorder) {
    if obs.is_enabled() {
        print!("{}", obs.snapshot().render());
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    // Size the process-global work-stealing pool before any parallel call;
    // all subcommands (and the structures they build) share that scheduler.
    // Validated strictly: `set_num_threads` would accept anything silently
    // (0 means "restore the default" to it), so catch bad input here.
    if let Some(v) = args.flags.get("threads") {
        let threads: usize = v
            .parse()
            .map_err(|_| format!("--threads {v:?}: expected a positive integer"))?;
        if threads == 0 {
            return Err("--threads 0 is invalid: pass a positive thread count, \
                        or omit the flag to use all cores"
                .into());
        }
        pbdmm::primitives::par::set_num_threads(threads);
    }
    let cmd = args.positional.first().ok_or("missing command")?.as_str();
    match cmd {
        "match" => cmd_match(&args),
        "dynamic" => cmd_dynamic(&args),
        "cover" => cmd_cover(&args),
        "gen" => cmd_gen(&args),
        "serve" => cmd_serve(&args),
        "replay" => cmd_replay(&args),
        "daemon" => cmd_daemon(&args),
        "load" => cmd_load(&args),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load(args: &Args) -> Result<Hypergraph, String> {
    let path = args
        .positional
        .get(1)
        .ok_or("missing graph file argument")?;
    io::read_hypergraph_file(&PathBuf::from(path))
}

fn cmd_match(args: &Args) -> Result<(), String> {
    let g = load(args)?;
    let seed: u64 = args.flag("seed", 42)?;
    let meter = CostMeter::new();
    let mut rng = SplitMix64::new(seed);
    let start = std::time::Instant::now();
    let result = pbdmm::matching::parallel_greedy_match(&g.edges, &mut rng, &meter);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "graph: n={} m={} m'={} rank={}",
        g.n,
        g.m(),
        g.total_cardinality(),
        g.rank()
    );
    println!("matching size: {}", result.matches.len());
    println!("parallel rounds: {}", result.rounds);
    println!(
        "model work: {} ({:.2} per unit cardinality)",
        meter.work(),
        meter.work() as f64 / g.total_cardinality().max(1) as f64
    );
    println!("wall clock: {:.1} ms", secs * 1e3);
    if !g.is_maximal_matching(&result.matched_edges()) {
        return Err("internal error: produced matching not maximal".into());
    }
    Ok(())
}

fn parse_order(s: &str) -> Result<DeletionOrder, String> {
    Ok(match s {
        "uniform" => DeletionOrder::Uniform,
        "fifo" => DeletionOrder::Fifo,
        "lifo" => DeletionOrder::Lifo,
        "clustered" => DeletionOrder::VertexClustered,
        "degree" => DeletionOrder::DegreeBiased,
        other => return Err(format!("unknown deletion order {other:?}")),
    })
}

fn cmd_dynamic(args: &Args) -> Result<(), String> {
    let g = load(args)?;
    let batch: usize = args.flag("batch", 256)?;
    let seed: u64 = args.flag("seed", 42)?;
    let order = parse_order(&args.flag("order", "uniform".to_string())?)?;
    let contender = args.flag("contender", "dynamic".to_string())?;
    let w = insert_then_delete(&g, batch, order, seed ^ 0xAD5E_11ED);
    println!("graph: n={} m={} rank={}", g.n, g.m(), g.rank());

    // Every contender goes through the same generic BatchDynamic driver.
    let report = match contender.as_str() {
        "dynamic" => {
            let mut dm = DynamicMatching::with_seed(seed);
            let report = run_workload(&mut dm, &w);
            let stats = dm.stats();
            println!("mean payment phi: {:.3} (bound: 2)", stats.mean_payment());
            println!(
                "epochs: {} created / {} natural / {} stolen / {} bloated; settle rounds: {}",
                stats.epochs_created,
                stats.natural_epochs,
                stats.stolen_epochs,
                stats.bloated_epochs,
                stats.settle_rounds
            );
            report
        }
        "recompute" => run_workload(&mut RecomputeMatching::with_seed(seed), &w),
        "naive" => run_workload(&mut NaiveDynamic::new(), &w),
        "setcover" => {
            let mut dc = DynamicSetCover::with_seed(seed);
            let report = run_workload(&mut dc, &w);
            println!("final cover size: {} (elements drained)", dc.cover_size());
            report
        }
        other => return Err(format!("unknown contender {other:?}")),
    };
    println!("contender: {contender}");
    println!(
        "stream: {} updates in {} batches of {} ({:?} deletions), empty-to-empty",
        report.updates, report.batches, batch, order
    );
    println!(
        "throughput: {:.0} updates/s ({:.2} us/update)",
        report.updates_per_second(),
        report.seconds / report.updates.max(1) as f64 * 1e6
    );
    println!("model work/update: {:.2}", report.work_per_update());
    Ok(())
}

fn cmd_cover(args: &Args) -> Result<(), String> {
    let g = load(args)?;
    let seed: u64 = args.flag("seed", 42)?;
    let (cover, lb) = pbdmm::setcover::static_cover(&g.edges, seed);
    pbdmm::setcover::validate_cover(&g.edges, &cover)
        .map_err(|e| format!("internal error: invalid cover: {e}"))?;
    println!(
        "instance: {} sets, {} elements, max frequency {}",
        g.n,
        g.m(),
        g.rank()
    );
    println!(
        "cover size: {} (matching lower bound on OPT: {lb}, guarantee <= {}x)",
        cover.len(),
        g.rank()
    );
    Ok(())
}

/// One producer's synthetic load against the service: windows of inserts
/// (random rank-2/3 edges over a shared vertex universe) whose tickets are
/// awaited — recording submit→complete latency — followed by deletes of
/// half the committed ids. Publishes the highest acknowledged visibility
/// epoch into `acked` (the staleness reference point for readers) and
/// counts read-your-writes violations against `epoch_now` (the query
/// handle's current epoch; never fires by construction). Returns
/// (updates submitted, latencies in µs, RYW violations).
fn service_producer_load(
    h: &ServiceHandle,
    mut rng: SplitMix64,
    total_updates: usize,
    acked: &AtomicU64,
    epoch_now: &(dyn Fn() -> u64 + Sync),
) -> (usize, Vec<f64>, u64) {
    const WINDOW: usize = 64;
    const UNIVERSE: u64 = 4096;
    let mut latencies = Vec::with_capacity(total_updates);
    let mut done = 0usize;
    let mut ryw_violations = 0u64;
    let mut observe = |c: &pbdmm::service::Completion| {
        acked.fetch_max(c.epoch, Ordering::Relaxed);
        // Read-your-writes: the snapshot carrying this batch is published
        // before the ticket completes, so the handle can never be behind.
        if epoch_now() < c.epoch {
            ryw_violations += 1;
        }
    };
    while done < total_updates {
        let window = WINDOW.min(total_updates - done);
        let mut tickets = Vec::with_capacity(window);
        for _ in 0..window {
            let a = rng.bounded(UNIVERSE) as u32;
            let b = a + 1 + rng.bounded(7) as u32;
            let vs = if rng.bounded(4) == 0 {
                vec![a, b, b + 1 + rng.bounded(5) as u32]
            } else {
                vec![a, b]
            };
            tickets.push((std::time::Instant::now(), h.insert(vs)));
        }
        let mut ids: Vec<EdgeId> = Vec::with_capacity(window);
        for (t0, t) in tickets {
            let c = t.wait().expect("service insert");
            latencies.push(t0.elapsed().as_secs_f64() * 1e6);
            observe(&c);
            ids.push(c.done.id());
        }
        done += window;
        let deletes = (ids.len() / 2).min(total_updates - done);
        let mut tickets = Vec::with_capacity(deletes);
        for &id in ids.iter().take(deletes) {
            tickets.push((std::time::Instant::now(), h.delete(id)));
        }
        for (t0, t) in tickets {
            let c = t.wait().expect("service delete");
            latencies.push(t0.elapsed().as_secs_f64() * 1e6);
            observe(&c);
            debug_assert!(matches!(c.done, Done::Deleted(_) | Done::AlreadyDeleted(_)));
        }
        done += deletes;
    }
    (done, latencies, ryw_violations)
}

/// What a `serve` snapshot type must answer for the CLI's reader threads:
/// a handful of point queries per poll (counted as reads; `Err` means a
/// failed query) plus a full self-consistency check run once per newly
/// observed epoch.
trait ProbeSnapshot: Snapshot {
    fn probe(&self, rng: &mut SplitMix64) -> Result<(), String>;
    fn consistency(&self) -> Result<(), String>;
}

impl ProbeSnapshot for MatchingSnapshot {
    fn probe(&self, rng: &mut SplitMix64) -> Result<(), String> {
        let v = rng.bounded(4096) as u32;
        if self.is_matched(v) {
            let e = self
                .matched_edge_of(v)
                .ok_or_else(|| format!("vertex {v} matched but has no matched edge"))?;
            if !self.is_matched_edge(e) || !self.contains_edge(e) {
                return Err(format!("vertex {v}'s matched edge {e} is not live+matched"));
            }
            let partners = self
                .partners(v)
                .ok_or_else(|| format!("vertex {v} matched but has no partners"))?;
            if !partners.contains(&v) {
                return Err(format!("matched edge {e} does not contain vertex {v}"));
            }
        } else if self.partner(v).is_some() {
            return Err(format!("unmatched vertex {v} has a partner"));
        }
        Ok(())
    }

    fn consistency(&self) -> Result<(), String> {
        self.check_consistency()
    }
}

impl ProbeSnapshot for CoverSnapshot {
    fn probe(&self, rng: &mut SplitMix64) -> Result<(), String> {
        let s = self.stats();
        if s.cover_size != self.cover().len() || s.num_elements != self.elements().len() {
            return Err("stats disagree with snapshot contents".into());
        }
        // Every live element is covered at a batch boundary.
        if !self.elements().is_empty() {
            let e = self.elements()[rng.bounded(self.elements().len() as u64) as usize];
            if !self.is_covered(e) {
                return Err(format!("live element {e} uncovered"));
            }
        }
        Ok(())
    }

    fn consistency(&self) -> Result<(), String> {
        if self.cover_size() > 0 && self.num_elements() == 0 {
            return Err("non-empty cover over zero elements".into());
        }
        Ok(())
    }
}

/// What the reader tier observed during one `serve` run.
struct ReadReport {
    /// Point queries resolved.
    reads: u64,
    /// Queries that returned inconsistent results (must stay 0), plus any
    /// read-your-writes violations seen by the producers.
    failed: u64,
    /// Wall-clock seconds the readers ran (the writers' window).
    seconds: f64,
    /// Per-poll staleness samples, sorted: how many acknowledged updates
    /// the observed snapshot was behind at poll time.
    staleness: Vec<f64>,
}

/// The same load at the same durability contract, without the coalescing
/// layer: per-update singleton `apply` calls on one mutex-shared structure,
/// each update appended to its own WAL (flushed, fsynced when `sync`)
/// before it is acknowledged — what an application gets without group
/// commit. Returns (updates, seconds, structure).
fn direct_singleton_load<S: BatchDynamic + Send>(
    structure: S,
    producers: usize,
    per_producer: usize,
    seed: u64,
    wal: Option<(PathBuf, WalMeta, bool)>,
) -> Result<(u64, f64, S), String> {
    struct Shared<S> {
        s: S,
        wal: Option<(std::io::BufWriter<std::fs::File>, bool)>,
        seq: u64,
    }
    let wal_sink = match &wal {
        None => None,
        Some((path, meta, sync)) => {
            // Scratch log (deleted below) — refuse to clobber a real file.
            if std::fs::metadata(path)
                .map(|md| md.len() > 0)
                .unwrap_or(false)
            {
                return Err(format!(
                    "refusing to overwrite existing file {path:?} for the baseline's scratch WAL"
                ));
            }
            let file = std::fs::File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
            let mut w = std::io::BufWriter::new(file);
            pbdmm::graph::wal::write_header(&mut w, meta)
                .map_err(|e| format!("write {path:?}: {e}"))?;
            Some((w, *sync))
        }
    };
    let shared = Mutex::new(Shared {
        s: structure,
        wal: wal_sink,
        seq: 0,
    });
    let apply_logged = |batch: Batch| -> Result<_, String> {
        use std::io::Write;
        let mut g = shared.lock().unwrap();
        let seq = g.seq;
        if let Some((w, sync)) = g.wal.as_mut() {
            let sync = *sync;
            pbdmm::graph::wal::write_batch(w, seq, &batch)
                .and_then(|()| w.flush())
                .map_err(|e| format!("singleton WAL append: {e}"))?;
            if sync {
                w.get_ref()
                    .sync_data()
                    .map_err(|e| format!("singleton WAL fsync: {e}"))?;
            }
        }
        g.seq += 1;
        g.s.apply(batch)
            .map_err(|e| format!("singleton apply: {e}"))
    };
    let start = std::time::Instant::now();
    let total: Result<u64, String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let apply_logged = &apply_logged;
                scope.spawn(move || -> Result<u64, String> {
                    const WINDOW: usize = 64;
                    const UNIVERSE: u64 = 4096;
                    let mut rng = SplitMix64::new(seed ^ (p as u64).wrapping_mul(0x9e37));
                    let mut done = 0usize;
                    while done < per_producer {
                        let window = WINDOW.min(per_producer - done);
                        let mut ids = Vec::with_capacity(window);
                        for _ in 0..window {
                            let a = rng.bounded(UNIVERSE) as u32;
                            let b = a + 1 + rng.bounded(7) as u32;
                            let vs = if rng.bounded(4) == 0 {
                                vec![a, b, b + 1 + rng.bounded(5) as u32]
                            } else {
                                vec![a, b]
                            };
                            let out = apply_logged(Batch::new().insert(vs))?;
                            ids.push(out.inserted[0]);
                        }
                        done += window;
                        let deletes = (ids.len() / 2).min(per_producer - done);
                        for &id in ids.iter().take(deletes) {
                            apply_logged(Batch::new().delete(id))?;
                        }
                        done += deletes;
                    }
                    Ok(done as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("baseline producer panicked"))
            .sum()
    });
    let seconds = start.elapsed().as_secs_f64();
    let guard = shared.into_inner().unwrap();
    if let Some((path, _, _)) = &wal {
        std::fs::remove_file(path).ok();
    }
    Ok((total?, seconds, guard.s))
}

/// What one `serve` run produced: (updates, seconds, latencies µs, service
/// stats, read report, final structure).
type ServeOutcome<S> = (u64, f64, Vec<f64>, ServiceStats, ReadReport, S);

/// Drive a synthetic multi-producer load through the service — with
/// `readers` concurrent snapshot-reader threads resolving point queries
/// against the epoch read path the whole time — and report.
#[allow(clippy::too_many_arguments)]
fn serve_load<S>(
    structure: S,
    producers: usize,
    per_producer: usize,
    readers: usize,
    policy: CoalescePolicy,
    wal: Option<WalConfig>,
    seed: u64,
    obs: Recorder,
) -> Result<ServeOutcome<S>, String>
where
    S: BatchDynamic + Snapshots + Checkpoint + Send + 'static,
    S::Snap: ProbeSnapshot,
{
    let mut builder = ServiceConfig::builder().policy(policy).obs(obs);
    if let Some(cfg) = wal {
        builder = builder.wal(cfg);
    }
    // --readers 0 really disables the read tier: plain `start`, so the
    // structure never captures snapshots and producers skip the epoch
    // checks — the write path (and the --compare direct speedup) is then
    // measured without any read-side overhead.
    let (svc, query) = if readers > 0 {
        let (svc, q) = builder
            .start_serving(structure)
            .map_err(|e| e.to_string())?;
        (svc, Some(q))
    } else {
        let svc = builder.start(structure).map_err(|e| e.to_string())?;
        (svc, None)
    };
    let start = std::time::Instant::now();
    let all_latencies = Mutex::new(Vec::new());
    // Highest acknowledged visibility epoch across all producers — the
    // reference point snapshot staleness is measured against.
    let acked = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let read_acc = Mutex::new((0u64, 0u64, Vec::<f64>::new())); // reads, failed, staleness
    let total: u64 = std::thread::scope(|scope| {
        for r in 0..readers {
            let q = query.clone().expect("readers > 0 implies start_serving");
            let (acked, stop, read_acc) = (&acked, &stop, &read_acc);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(seed ^ 0xD0_5EED ^ (r as u64) << 17);
                let (mut reads, mut failed) = (0u64, 0u64);
                let mut staleness = Vec::new();
                let mut checked_epoch = u64::MAX;
                while !stop.load(Ordering::Relaxed) {
                    let snap = q.snapshot();
                    // Full consistency check once per newly observed epoch;
                    // cheap point probes on every poll.
                    if snap.epoch() != checked_epoch {
                        checked_epoch = snap.epoch();
                        if let Err(e) = snap.consistency() {
                            eprintln!("reader {r}: inconsistent snapshot: {e}");
                            failed += 1;
                        }
                        reads += 1;
                    }
                    for _ in 0..32 {
                        if let Err(e) = snap.probe(&mut rng) {
                            eprintln!("reader {r}: failed query: {e}");
                            failed += 1;
                        }
                        reads += 1;
                    }
                    staleness
                        .push(acked.load(Ordering::Relaxed).saturating_sub(snap.epoch()) as f64);
                    // Busy-polling readers must not starve the coalescer
                    // (or each other) on hosts with few cores.
                    std::thread::yield_now();
                }
                let mut acc = read_acc.lock().unwrap();
                acc.0 += reads;
                acc.1 += failed;
                acc.2.append(&mut staleness);
            });
        }
        let writer_handles: Vec<_> = (0..producers)
            .map(|p| {
                let h = svc.handle();
                let q = query.clone();
                let (lat, acked) = (&all_latencies, &acked);
                scope.spawn(move || {
                    let rng = SplitMix64::new(seed ^ (p as u64).wrapping_mul(0x9e37));
                    // Read path off: no epoch to consult, the RYW check
                    // trivially holds.
                    let epoch_now: Box<dyn Fn() -> u64 + Sync> = match q {
                        Some(q) => Box::new(move || q.epoch()),
                        None => Box::new(|| u64::MAX),
                    };
                    let (n, mut l, ryw) =
                        service_producer_load(&h, rng, per_producer, acked, epoch_now.as_ref());
                    lat.lock().unwrap().append(&mut l);
                    (n as u64, ryw)
                })
            })
            .collect();
        let mut total = 0u64;
        let mut ryw_total = 0u64;
        for h in writer_handles {
            let (n, ryw) = h.join().unwrap();
            total += n;
            ryw_total += ryw;
        }
        stop.store(true, Ordering::Relaxed);
        read_acc.lock().unwrap().1 += ryw_total;
        total
    });
    let seconds = start.elapsed().as_secs_f64();
    let (s, stats) = svc.shutdown();
    let mut latencies = all_latencies.into_inner().unwrap();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (reads, failed, mut staleness) = read_acc.into_inner().unwrap();
    staleness.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let read = ReadReport {
        reads,
        failed,
        seconds,
        staleness,
    };
    Ok((total, seconds, latencies, stats, read, s))
}

/// `serve_load` for the K-shard tier (`--shards K`, matching only): the
/// same synthetic producer/reader load driven through
/// [`ServiceConfig::builder().shards(K)`], so its report is directly
/// comparable with the unsharded run. Snapshots are always enabled (the
/// sharded tier exists for read scale-out); `readers = 0` merely skips the
/// reader threads. Returns shard 0's replica — all K are byte-identical by
/// construction — plus the routing stats.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn serve_load_sharded(
    seed: u64,
    shards: usize,
    producers: usize,
    per_producer: usize,
    readers: usize,
    policy: CoalescePolicy,
    wal: Option<WalConfig>,
    obs: Recorder,
) -> Result<
    (
        u64,
        f64,
        Vec<f64>,
        ServiceStats,
        ReadReport,
        DynamicMatching,
        ShardedStats,
    ),
    String,
> {
    let mut builder = ServiceConfig::builder()
        .policy(policy)
        .shards(shards)
        .obs(obs);
    if let Some(cfg) = wal {
        builder = builder.wal(cfg);
    }
    let (svc, query) = builder
        .start_sharded(move || DynamicMatching::with_seed(seed))
        .map_err(|e| e.to_string())?;
    let start = std::time::Instant::now();
    let all_latencies = Mutex::new(Vec::new());
    let acked = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let read_acc = Mutex::new((0u64, 0u64, Vec::<f64>::new())); // reads, failed, staleness
    let total: u64 = std::thread::scope(|scope| {
        for r in 0..readers {
            let q = query.clone();
            let (acked, stop, read_acc) = (&acked, &stop, &read_acc);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(seed ^ 0xD0_5EED ^ (r as u64) << 17);
                let (mut reads, mut failed) = (0u64, 0u64);
                let mut staleness = Vec::new();
                let mut checked_epoch = u64::MAX;
                while !stop.load(Ordering::Relaxed) {
                    // Rotate point probes across the K shard snapshots: each
                    // poll reads the shard owning a random vertex, the access
                    // pattern the vertex-cut partition exists to serve.
                    let v = rng.bounded(u32::MAX as u64) as u32;
                    let snap = q.snapshot_for_vertex(v);
                    if snap.epoch() != checked_epoch {
                        checked_epoch = snap.epoch();
                        if let Err(e) = snap.consistency() {
                            eprintln!("reader {r}: inconsistent snapshot: {e}");
                            failed += 1;
                        }
                        reads += 1;
                    }
                    for _ in 0..32 {
                        if let Err(e) = snap.probe(&mut rng) {
                            eprintln!("reader {r}: failed query: {e}");
                            failed += 1;
                        }
                        reads += 1;
                    }
                    staleness
                        .push(acked.load(Ordering::Relaxed).saturating_sub(snap.epoch()) as f64);
                    std::thread::yield_now();
                }
                let mut acc = read_acc.lock().unwrap();
                acc.0 += reads;
                acc.1 += failed;
                acc.2.append(&mut staleness);
            });
        }
        let writer_handles: Vec<_> = (0..producers)
            .map(|p| {
                let h = svc.handle();
                let q = query.clone();
                let (lat, acked) = (&all_latencies, &acked);
                scope.spawn(move || {
                    let rng = SplitMix64::new(seed ^ (p as u64).wrapping_mul(0x9e37));
                    let epoch_now: Box<dyn Fn() -> u64 + Sync> = Box::new(move || q.epoch());
                    let (n, mut l, ryw) =
                        service_producer_load(&h, rng, per_producer, acked, epoch_now.as_ref());
                    lat.lock().unwrap().append(&mut l);
                    (n as u64, ryw)
                })
            })
            .collect();
        let mut total = 0u64;
        let mut ryw_total = 0u64;
        for h in writer_handles {
            let (n, ryw) = h.join().unwrap();
            total += n;
            ryw_total += ryw;
        }
        stop.store(true, Ordering::Relaxed);
        read_acc.lock().unwrap().1 += ryw_total;
        total
    });
    let seconds = start.elapsed().as_secs_f64();
    let (mut replicas, routing) = svc.shutdown();
    let m = replicas.remove(0);
    // Every replica applied the same global batches from the same seed:
    // anything but identical summaries is a determinism bug worth failing a
    // benchmark run over.
    for (s, r) in replicas.iter().enumerate() {
        if (r.epoch(), r.num_edges(), r.matching_size())
            != (m.epoch(), m.num_edges(), m.matching_size())
        {
            return Err(format!(
                "shard {} diverged from shard 0: epoch={} edges={} matching={} vs epoch={} edges={} matching={}",
                s + 1,
                r.epoch(),
                r.num_edges(),
                r.matching_size(),
                m.epoch(),
                m.num_edges(),
                m.matching_size()
            ));
        }
    }
    let mut latencies = all_latencies.into_inner().unwrap();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (reads, failed, mut staleness) = read_acc.into_inner().unwrap();
    staleness.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let read = ReadReport {
        reads,
        failed,
        seconds,
        staleness,
    };
    Ok((total, seconds, latencies, routing.service, read, m, routing))
}

/// One-line routing summary for a K-shard run: how the deterministic
/// min-vertex partition spread batch ownership across shards, and how many
/// cross-shard edges left stubs on non-owner shards.
fn sharding_summary(r: &ShardedStats) -> String {
    format!(
        "sharding: K={} routed={:?} stubs={:?} imbalance={:.1}%",
        r.shards(),
        r.routed,
        r.stubs,
        r.imbalance_pct()
    )
}

/// Resolve the `--wal` / `--wal-sync` / `--checkpoint-every` convention
/// shared by `serve` and `daemon`: durable by default (auto-named temp
/// path), `--wal none` disables, `--wal PATH` picks the location. An
/// existing WAL is never overwritten — the service refuses rather than
/// destroying a recoverable log.
///
/// `--checkpoint-every N` switches to the segmented directory mode: PATH
/// becomes a directory of rotated `NNNNNN.seg` files with a `NNNNNN.ckpt`
/// checkpoint (and compaction) after every >= N updates (`0` keeps the
/// directory layout but disables rotation). A `--wal PATH` naming an
/// **existing directory** also selects the segmented mode — that is how a
/// restart points the daemon back at the log it is recovering from.
///
/// `shards > 1` forces the segmented mode regardless of the other flags:
/// the sharded tier always logs under a directory of `shard-0 ..
/// shard-(K-1)` subdirectories, one segmented log per shard.
fn wal_from_flags(
    args: &Args,
    meta: &WalMeta,
    sync: bool,
    shards: usize,
    tag: &str,
) -> Result<Option<WalConfig>, String> {
    let ckpt_every: Option<u64> = match args.flags.get("checkpoint-every") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|e| format!("--checkpoint-every {v:?}: {e}"))?,
        ),
    };
    let path = match args.flags.get("wal").map(String::as_str) {
        Some("none") => {
            if ckpt_every.is_some() {
                return Err("--checkpoint-every requires a WAL (got --wal none)".into());
            }
            return Ok(None);
        }
        Some(p) => PathBuf::from(p),
        None => {
            // Unique auto path: pid alone can recycle across container
            // runs, and an existing WAL is never overwritten (the service
            // refuses rather than destroying a recoverable log).
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0);
            let ext = if ckpt_every.is_some() || shards > 1 {
                "waldir"
            } else {
                "wal"
            };
            std::env::temp_dir().join(format!("pbdmm_{tag}_{}_{nanos}.{ext}", std::process::id()))
        }
    };
    let mut cfg = if ckpt_every.is_some() || path.is_dir() || shards > 1 {
        let mut cfg = WalConfig::dir(path, meta.clone());
        if let Some(n) = ckpt_every {
            // 0 keeps the segment-directory layout but never rotates.
            cfg.checkpoint_every = (n > 0).then_some(n);
        }
        cfg
    } else {
        WalConfig::new(path, meta.clone())
    };
    cfg.sync = sync;
    Ok(Some(cfg))
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let producers: usize = args.flag("producers", 4)?;
    let per_producer: usize = args.flag("updates", 10_000)?;
    let readers: usize = args.flag("readers", 2)?;
    let max_batch: usize = args.flag("max-batch", 1024)?;
    // 0 = group commit (flush whenever the ingress is momentarily empty);
    // positive = linger window maximizing coalescing at a latency cost.
    let max_delay_us: u64 = args.flag("max-delay-us", 0)?;
    let seed: u64 = args.flag("seed", 42)?;
    let structure = args.flag("structure", "matching".to_string())?;
    let compare = args.flag("compare", "direct".to_string())?;
    let shards: usize = args.flag("shards", 1)?;
    if producers == 0 || per_producer == 0 {
        return Err("--producers and --updates must be positive".into());
    }
    if shards == 0 || shards > MAX_SHARDS {
        return Err(format!("--shards must be in 1..={MAX_SHARDS}"));
    }
    if shards > 1 && structure != "matching" {
        return Err(format!(
            "--shards {shards} requires --structure matching (the sharded tier \
             replicates the matcher; setcover is unsharded)"
        ));
    }
    if !matches!(compare.as_str(), "direct" | "none") {
        return Err(format!("unknown --compare mode {compare:?}"));
    }
    let policy = CoalescePolicy {
        max_batch: max_batch.max(1),
        max_delay: Duration::from_micros(max_delay_us),
    };
    // Durable by default: an update is acknowledged only once the batch
    // containing it is on the log (fsync per commit unless --wal-sync
    // false). `--wal none` turns logging off entirely; `--wal FILE` picks
    // the location (default: a file in the system temp dir).
    let wal_sync: bool = args.flag("wal-sync", true)?;
    let meta = WalMeta {
        structure: structure.clone(),
        seed,
        ids_recycling: false,
    };
    let prof = profile_from_flags(args)?;
    let wal = wal_from_flags(args, &meta, wal_sync, shards, "serve")?;
    let wal_path = wal.as_ref().map(|w| w.path.clone());
    println!(
        "serve: {producers} producers x {per_producer} updates, {readers} readers, \
         max_batch={max_batch} max_delay={max_delay_us}us structure={structure} \
         shards={shards} wal={} (fsync {})",
        wal_path
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "off".into()),
        if wal.is_some() && wal_sync {
            "on"
        } else {
            "off"
        }
    );

    let printer = prof.interval.map(|every| {
        let obs = prof.obs.clone();
        ProfilePrinter::spawn(every, move || Some(obs.snapshot()))
    });
    let (total, seconds, latencies, stats, read, final_line, routing) = match structure.as_str() {
        "matching" if shards > 1 => {
            let (total, seconds, latencies, stats, read, m, routing) = serve_load_sharded(
                seed,
                shards,
                producers,
                per_producer,
                readers,
                policy,
                wal,
                prof.obs.clone(),
            )?;
            check_invariants(&m).map_err(|e| format!("post-serve invariants: {e}"))?;
            let line = format!(
                "final: epoch={} edges={} matching={}",
                m.epoch(),
                m.num_edges(),
                m.matching_size()
            );
            (total, seconds, latencies, stats, read, line, Some(routing))
        }
        "matching" => {
            let (total, seconds, latencies, stats, read, m) = serve_load(
                DynamicMatching::with_seed(seed),
                producers,
                per_producer,
                readers,
                policy,
                wal,
                seed,
                prof.obs.clone(),
            )?;
            check_invariants(&m).map_err(|e| format!("post-serve invariants: {e}"))?;
            let line = format!(
                "final: epoch={} edges={} matching={}",
                m.epoch(),
                m.num_edges(),
                m.matching_size()
            );
            (total, seconds, latencies, stats, read, line, None)
        }
        "setcover" => {
            let (total, seconds, latencies, stats, read, c) = serve_load(
                DynamicSetCover::with_seed(seed),
                producers,
                per_producer,
                readers,
                policy,
                wal,
                seed,
                prof.obs.clone(),
            )?;
            check_invariants(c.matching()).map_err(|e| format!("post-serve invariants: {e}"))?;
            let line = format!(
                "final: epoch={} edges={} matching={} cover={}",
                c.epoch(),
                c.num_elements(),
                c.matching_size(),
                c.cover_size()
            );
            (total, seconds, latencies, stats, read, line, None)
        }
        other => return Err(format!("unknown structure {other:?}")),
    };

    if let Some(p) = printer {
        p.finish();
    }
    let service_rate = total as f64 / seconds;
    println!(
        "coalesced service: {}",
        metrics::throughput_summary(total, seconds)
    );
    println!("batches: {}", metrics::batches_summary(&stats));
    println!("ticket latency: {}", metrics::latency_summary(&latencies));
    if readers > 0 {
        println!(
            "reads: {}",
            metrics::reads_summary(
                read.reads,
                read.seconds,
                &format!("{readers} readers"),
                read.failed
            )
        );
        println!(
            "snapshot staleness: {}",
            metrics::staleness_summary(&read.staleness)
        );
        if read.failed > 0 {
            return Err(format!(
                "{} failed snapshot queries during serve (expected 0)",
                read.failed
            ));
        }
    }
    if let Some(path) = &wal_path {
        println!(
            "wal: {} batches appended to {}",
            stats.wal_batches,
            path.display()
        );
    }
    if let Some(routing) = &routing {
        println!("{}", sharding_summary(routing));
    }
    print_profile(&prof.obs);
    println!("{final_line}");

    if compare == "direct" {
        // The baseline gets the identical durability contract: its own WAL,
        // appended and flushed (and fsynced, if the service fsyncs) before
        // each singleton apply is acknowledged.
        let direct_wal = wal_path.as_ref().map(|p| {
            let mut path = p.clone();
            path.set_extension("direct.wal");
            (path, meta.clone(), wal_sync)
        });
        let (dtotal, dseconds, _) = match structure.as_str() {
            "matching" => {
                let (t, s, m) = direct_singleton_load(
                    DynamicMatching::with_seed(seed),
                    producers,
                    per_producer,
                    seed,
                    direct_wal,
                )?;
                (t, s, m.num_edges())
            }
            _ => {
                let (t, s, c) = direct_singleton_load(
                    DynamicSetCover::with_seed(seed),
                    producers,
                    per_producer,
                    seed,
                    direct_wal,
                )?;
                (t, s, c.num_elements())
            }
        };
        let direct_rate = dtotal as f64 / dseconds;
        println!(
            "direct singleton ({producers} threads, mutex, batch=1, same durability): \
             {dtotal} updates in {:.1} ms -> {:.0} updates/s",
            dseconds * 1e3,
            direct_rate
        );
        println!(
            "coalescing speedup: {:.2}x {}",
            service_rate / direct_rate,
            if service_rate > direct_rate {
                "(service wins)"
            } else {
                "(WARNING: singleton applies were faster on this run)"
            }
        );
    }
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let path = PathBuf::from(
        args.positional
            .get(1)
            .ok_or("missing WAL file or directory argument")?,
    );
    if path.is_dir() {
        return replay_dir(&path, args);
    }
    let prof = profile_from_flags(args)?;
    let wal = read_wal_file(&path)?;
    println!(
        "wal: {} committed batches, {} updates, structure={} seed={}{}",
        wal.batches.len(),
        wal.total_updates(),
        wal.meta.structure,
        wal.meta.seed,
        if wal.truncated {
            " (trailing uncommitted batch dropped)"
        } else {
            ""
        }
    );
    let start = std::time::Instant::now();
    match wal.meta.structure.as_str() {
        "matching" => {
            // Replay with the profile recorder attached: the whole replay
            // is one `batch`/`apply` span, and the matching tier records
            // per-batch `settle`/`snapshot_publish` sub-spans inside it.
            let mut m = DynamicMatching::with_seed(wal.meta.seed);
            m.set_obs(prof.obs.clone());
            let report = {
                let _batch = prof.obs.span(Phase::Batch);
                let _apply = prof.obs.span(Phase::Apply);
                replay_into(&mut m, &wal)?
            };
            prof.obs.add(Counter::Batches, report.batches);
            prof.obs.add(Counter::Updates, report.updates);
            check_invariants(&m).map_err(|e| format!("replayed invariants: {e}"))?;
            println!(
                "replayed {} updates in {} applies ({} deferred) in {:.1} ms",
                report.updates,
                report.applies,
                report.deferred,
                start.elapsed().as_secs_f64() * 1e3
            );
            println!(
                "final: epoch={} edges={} matching={}",
                m.epoch(),
                m.num_edges(),
                m.matching_size()
            );
        }
        "setcover" => {
            let (c, report) = {
                let _batch = prof.obs.span(Phase::Batch);
                let _apply = prof.obs.span(Phase::Apply);
                replay_setcover(&wal)?
            };
            prof.obs.add(Counter::Batches, report.batches);
            prof.obs.add(Counter::Updates, report.updates);
            check_invariants(c.matching()).map_err(|e| format!("replayed invariants: {e}"))?;
            println!(
                "replayed {} updates in {} applies ({} deferred) in {:.1} ms",
                report.updates,
                report.applies,
                report.deferred,
                start.elapsed().as_secs_f64() * 1e3
            );
            println!(
                "final: epoch={} edges={} matching={} cover={}",
                c.epoch(),
                c.num_elements(),
                c.matching_size(),
                c.cover_size()
            );
        }
        other => return Err(format!("WAL records unknown structure {other:?}")),
    }
    print_profile(&prof.obs);
    println!("invariants: ok");
    Ok(())
}

/// Replay a segmented WAL directory: recover exactly as a restarted daemon
/// would — load the newest intact checkpoint, replay only the tail
/// segments — or force a full-history replay with `--from-genesis true`.
/// Ends with the same byte-comparable `final:` line as single-file replay,
/// so CI can diff checkpointed recovery against the full history.
///
/// A directory laid out as `shard-0 .. shard-(K-1)` (written by a
/// `--shards K` daemon or serve run) is detected automatically and
/// recovered through the K-way merge: per-shard checkpoints, the
/// cross-shard consistency cut, and route-directed sub-batch merging.
/// `--shards K` overrides the detection (0, the default, auto-detects).
fn replay_dir(dir: &PathBuf, args: &Args) -> Result<(), String> {
    let from_genesis: bool = args.flag("from-genesis", false)?;
    let shards_flag: usize = args.flag("shards", 0)?;
    let prof = profile_from_flags(args)?;
    let shards = match shards_flag {
        0 => detect_shards(dir),
        1 => None,
        k => Some(k),
    };
    if let Some(k) = shards {
        return replay_sharded_dir(dir, k, from_genesis, &prof);
    }
    let meta = oldest_segment_meta(dir)?;
    println!(
        "wal: segment directory {}, structure={} seed={}",
        dir.display(),
        meta.structure,
        meta.seed
    );
    let start = std::time::Instant::now();
    match meta.structure.as_str() {
        "matching" => {
            // Recover through the generic path with the profile recorder
            // attached to the structure before any batch replays.
            let (seed, recycling) = (meta.seed, meta.ids_recycling);
            let obs = prof.obs.clone();
            let rec = {
                let _batch = prof.obs.span(Phase::Batch);
                let _apply = prof.obs.span(Phase::Apply);
                recover_dir_with(
                    dir,
                    move || {
                        let mut m = DynamicMatching::with_seed(seed);
                        if recycling {
                            m.set_recycle_ids(true);
                        }
                        m.set_obs(obs.clone());
                        m
                    },
                    from_genesis,
                )?
            };
            prof.obs.add(Counter::Batches, rec.info().report.batches);
            prof.obs.add(Counter::Updates, rec.info().report.updates);
            print_recovery(&rec.info(), start.elapsed());
            let m = rec.structure;
            check_invariants(&m).map_err(|e| format!("recovered invariants: {e}"))?;
            println!(
                "final: epoch={} edges={} matching={}",
                m.epoch(),
                m.num_edges(),
                m.matching_size()
            );
        }
        "setcover" => {
            let seed = meta.seed;
            let rec = {
                let _batch = prof.obs.span(Phase::Batch);
                let _apply = prof.obs.span(Phase::Apply);
                recover_dir_with(dir, move || DynamicSetCover::with_seed(seed), from_genesis)?
            };
            prof.obs.add(Counter::Batches, rec.info().report.batches);
            prof.obs.add(Counter::Updates, rec.info().report.updates);
            print_recovery(&rec.info(), start.elapsed());
            let c = rec.structure;
            check_invariants(c.matching()).map_err(|e| format!("recovered invariants: {e}"))?;
            println!(
                "final: epoch={} edges={} matching={} cover={}",
                c.epoch(),
                c.num_elements(),
                c.matching_size(),
                c.cover_size()
            );
        }
        other => return Err(format!("WAL records unknown structure {other:?}")),
    }
    print_profile(&prof.obs);
    println!("invariants: ok");
    Ok(())
}

/// Replay a `shard-0 .. shard-(K-1)` WAL directory through the K-way
/// sharded recovery (read-only: torn tails are tolerated, never trimmed),
/// verify all K recovered replicas agree, and print the same
/// byte-comparable `final:` line as every other replay path.
fn replay_sharded_dir(
    dir: &Path,
    k: usize,
    from_genesis: bool,
    prof: &ProfileOpts,
) -> Result<(), String> {
    let meta = oldest_segment_meta(&shard_dir(dir, 0))?;
    if meta.structure != "matching" {
        return Err(format!(
            "sharded WAL records structure {:?}; only matching is sharded",
            meta.structure
        ));
    }
    println!(
        "wal: sharded segment directory {} (K={k}), structure={} seed={}",
        dir.display(),
        meta.structure,
        meta.seed
    );
    let start = std::time::Instant::now();
    let rec = {
        let _batch = prof.obs.span(Phase::Batch);
        let _apply = prof.obs.span(Phase::Apply);
        recover_sharded_matching(dir, k, from_genesis, false)?
    };
    prof.obs.add(Counter::Batches, rec.info.report.batches);
    prof.obs.add(Counter::Updates, rec.info.report.updates);
    print_recovery(&rec.info, start.elapsed());
    let mut replicas = rec.shards;
    let m = replicas.remove(0);
    check_invariants(&m).map_err(|e| format!("recovered invariants: {e}"))?;
    for (s, r) in replicas.iter().enumerate() {
        if (r.epoch(), r.num_edges(), r.matching_size())
            != (m.epoch(), m.num_edges(), m.matching_size())
        {
            return Err(format!(
                "recovered shard {} disagrees with shard 0 (epoch {} vs {})",
                s + 1,
                r.epoch(),
                m.epoch()
            ));
        }
        check_invariants(r).map_err(|e| format!("recovered shard {} invariants: {e}", s + 1))?;
    }
    println!(
        "final: epoch={} edges={} matching={}",
        m.epoch(),
        m.num_edges(),
        m.matching_size()
    );
    print_profile(&prof.obs);
    println!("invariants: ok ({k} shards agree)");
    Ok(())
}

/// Print what directory recovery actually did: which checkpoint it started
/// from (genesis when none was usable or `--from-genesis` forced it) and
/// how much log it replayed past that point.
fn print_recovery(info: &RecoveryInfo, elapsed: Duration) {
    match info.checkpoint {
        Some(seq) => println!(
            "recovery: from checkpoint at batch {seq} ({} of {} batches already baked in)",
            seq, info.batches
        ),
        None => println!(
            "recovery: from genesis ({} batches, no checkpoint used)",
            info.batches
        ),
    }
    println!(
        "replayed {} updates in {} applies across {} tail segments in {:.1} ms{}",
        info.report.updates,
        info.report.applies,
        info.segments_replayed,
        elapsed.as_secs_f64() * 1e3,
        if info.truncated {
            " (torn final append dropped)"
        } else {
            ""
        }
    );
}

/// Header metadata of the oldest segment in a WAL directory — segments all
/// agree on it (validated during replay), so one read suffices to learn
/// which structure and seed the log records.
fn oldest_segment_meta(dir: &PathBuf) -> Result<WalMeta, String> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "seg"))
        .collect();
    segs.sort();
    let oldest = segs
        .first()
        .ok_or_else(|| format!("{} contains no .seg files", dir.display()))?;
    Ok(read_wal_file(oldest)
        .map_err(|e| format!("{}: {e}", oldest.display()))?
        .meta)
}

fn cmd_daemon(args: &Args) -> Result<(), String> {
    use std::io::Write as _;
    let host = args.flag("host", "127.0.0.1".to_string())?;
    let port: u16 = match args.flags.get("port") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--port {v:?}: expected a port number (0 = ephemeral)"))?,
    };
    let max_connections: usize = args.flag("max-connections", 64)?;
    let max_inflight: usize = args.flag("max-inflight", 4096)?;
    let max_batch: usize = args.flag("max-batch", 1024)?;
    let max_delay_us: u64 = args.flag("max-delay-us", 0)?;
    let seed: u64 = args.flag("seed", 42)?;
    let shards: usize = args.flag("shards", 1)?;
    if max_connections == 0 || max_inflight == 0 {
        return Err("--max-connections and --max-inflight must be positive".into());
    }
    if shards == 0 || shards > MAX_SHARDS {
        return Err(format!("--shards must be in 1..={MAX_SHARDS}"));
    }
    let wal_sync: bool = args.flag("wal-sync", true)?;
    let meta = WalMeta {
        structure: "matching".into(),
        seed,
        ids_recycling: false,
    };
    let prof = profile_from_flags(args)?;
    let wal = wal_from_flags(args, &meta, wal_sync, shards, "daemon")?;
    let wal_path = wal.as_ref().map(|w| w.path.clone());
    let cfg = DaemonConfig {
        addr: format!("{host}:{port}"),
        max_connections,
        max_inflight,
        policy: CoalescePolicy {
            max_batch: max_batch.max(1),
            max_delay: Duration::from_micros(max_delay_us),
        },
        wal,
        shards,
        obs: prof.obs.clone(),
        ..Default::default()
    };
    // A segmented WAL directory is a recoverable log: resume from it (an
    // empty or absent directory is just a fresh start), deriving seed and
    // id mode from the segment metadata so a restarted daemon continues
    // the exact run it crashed out of. Single-file WALs keep the
    // refuse-to-overwrite behavior.
    let segmented = cfg.wal.as_ref().is_some_and(|w| w.segmented);
    let (daemon, recovered) = if segmented {
        let (daemon, info) = Daemon::recover_and_start(cfg)?;
        (daemon, Some(info))
    } else {
        (Daemon::start(DynamicMatching::with_seed(seed), cfg)?, None)
    };
    // Recovery is reported before the listening line: parsers scan for
    // `daemon: listening on`, and anything printed before it is preamble.
    // An empty directory recovers zero batches — that is a fresh start,
    // not worth a recovery line.
    if let Some(info) = recovered.filter(|i| i.batches > 0) {
        match info.checkpoint {
            Some(seq) => println!(
                "daemon: recovered {} batches (checkpoint at batch {seq}, {} tail segments)",
                info.batches, info.segments_replayed
            ),
            None => println!("daemon: recovered {} batches from genesis", info.batches),
        }
    }
    // The one line scripts parse: the bound address, ephemeral port
    // resolved. Flushed explicitly — under a pipe stdout is block-buffered
    // and a waiting parent would otherwise never see it.
    println!("daemon: listening on {}", daemon.local_addr());
    println!(
        "daemon: max_connections={max_connections} max_inflight={max_inflight} \
         max_batch={max_batch} max_delay={max_delay_us}us seed={seed} shards={shards} \
         wal={} (fsync {})",
        wal_path
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "off".into()),
        if wal_path.is_some() && wal_sync {
            "on"
        } else {
            "off"
        }
    );
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    // Serve until a client's Shutdown frame triggers the drain.
    let printer = prof.interval.map(|every| {
        let obs = prof.obs.clone();
        ProfilePrinter::spawn(every, move || Some(obs.snapshot()))
    });
    let report = daemon.run();
    if let Some(p) = printer {
        p.finish();
    }
    check_invariants(&report.structure).map_err(|e| format!("post-daemon invariants: {e}"))?;
    println!(
        "daemon: drained after {} connections ({} overloaded, {} protocol errors)",
        report.wire.total_connections, report.wire.overloaded, report.wire.protocol_errors
    );
    println!("batches: {}", metrics::batches_summary(&report.service));
    print_profile(&prof.obs);
    if let Some(path) = &wal_path {
        println!(
            "wal: {} batches appended to {}",
            report.service.wal_batches,
            path.display()
        );
    }
    if shards > 1 {
        println!("{}", sharding_summary(&report.routing));
    }
    let m = &report.structure;
    println!(
        "final: epoch={} edges={} matching={}",
        m.epoch(),
        m.num_edges(),
        m.matching_size()
    );
    Ok(())
}

fn cmd_load(args: &Args) -> Result<(), String> {
    let addr: std::net::SocketAddr = match (args.flags.get("addr"), args.flags.get("port")) {
        (Some(a), None) => a
            .parse()
            .map_err(|_| format!("--addr {a:?}: expected HOST:PORT"))?,
        (None, Some(p)) => {
            let port: u16 = p.parse().map_err(|_| {
                format!("--port {p:?}: expected the daemon's port number (1-65535)")
            })?;
            if port == 0 {
                return Err("--port 0 is invalid: pass the port the daemon printed \
                            on its 'daemon: listening on' line"
                    .into());
            }
            std::net::SocketAddr::from(([127, 0, 0, 1], port))
        }
        (Some(_), Some(_)) => return Err("pass either --addr or --port, not both".into()),
        (None, None) => {
            return Err("load needs the daemon's address: --addr HOST:PORT \
                                    or --port P (loopback)"
                .into())
        }
    };
    let connections: usize = args.flag("connections", 4)?;
    let per_connection: usize = args.flag("updates", 2_500)?;
    let queries_per_window: usize = args.flag("queries", 8)?;
    let seed: u64 = args.flag("seed", 42)?;
    let shards: usize = args.flag("shards", 1)?;
    let shutdown: bool = args.flag("shutdown", false)?;
    let prof = profile_from_flags(args)?;
    if connections == 0 || per_connection == 0 {
        return Err("--connections and --updates must be positive".into());
    }
    if shards == 0 || shards > MAX_SHARDS {
        return Err(format!("--shards must be in 1..={MAX_SHARDS}"));
    }
    let cfg = LoadConfig {
        connections,
        per_connection,
        queries_per_window,
        seed,
        shards,
    };
    println!(
        "load: {connections} connections x {per_connection} updates against {addr} \
         (queries/window {queries_per_window}, seed {seed}, shard affinity K={shards})"
    );
    // With --profile interval=N, scrape the daemon's cumulative profile
    // over a fresh connection each interval and print the deltas.
    let printer = prof.interval.map(|every| {
        ProfilePrinter::spawn(every, move || Client::connect(addr).ok()?.profile().ok())
    });
    let report = run_load(addr, &cfg)?;
    if let Some(p) = printer {
        p.finish();
    }
    println!(
        "over-the-wire service: {}",
        metrics::throughput_summary(report.updates, report.seconds)
    );
    println!(
        "ticket latency: {}",
        metrics::latency_summary(&report.latencies_us)
    );
    println!(
        "reads: {}",
        metrics::reads_summary(
            report.reads,
            report.seconds,
            &format!("{connections} connections"),
            report.failed
        )
    );
    println!(
        "snapshot staleness: {}",
        metrics::staleness_summary(&report.staleness)
    );
    println!(
        "admission: {} overloaded (retried), {} protocol errors",
        report.overloaded, report.protocol_errors
    );
    if prof.obs.is_enabled() {
        // Scrape the daemon's cumulative per-phase profile over the wire.
        let mut c = Client::connect(addr).map_err(|e| format!("profile connection: {e}"))?;
        let daemon_profile = c.profile().map_err(|e| format!("profile request: {e}"))?;
        if daemon_profile.is_empty() {
            println!("profile: daemon profiling disabled (start the daemon with --profile)");
        } else {
            print!("{}", daemon_profile.render());
        }
    }
    if shutdown {
        let mut c = Client::connect(addr).map_err(|e| format!("shutdown connection: {e}"))?;
        let stats = c.shutdown().map_err(|e| format!("shutdown request: {e}"))?;
        println!(
            "daemon stats at shutdown: epoch={} edges={} matching={} connections={}",
            stats.epoch, stats.num_edges, stats.matching_size, stats.total_connections
        );
    }
    if report.protocol_errors > 0 {
        return Err(format!(
            "{} connections failed with protocol/transport errors (expected 0)",
            report.protocol_errors
        ));
    }
    if report.failed > 0 {
        return Err(format!(
            "{} failed queries during load (expected 0)",
            report.failed
        ));
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let family = args
        .positional
        .get(1)
        .ok_or("missing graph family")?
        .as_str();
    let n: usize = args.flag("n", 1000)?;
    let m: usize = args.flag("m", 4 * n)?;
    let rank: usize = args.flag("rank", 3)?;
    let seed: u64 = args.flag("seed", 1)?;
    let out = args.flags.get("out").ok_or("missing -o <file>")?;
    let g = match family {
        "er" => gen::erdos_renyi(n, m, seed),
        "hyper" => gen::random_hypergraph(n, m, rank, seed),
        "powerlaw" => gen::preferential_attachment(n, rank.max(2), seed),
        "star" => gen::star(n),
        "bipartite" => gen::bipartite(n / 2, n - n / 2, m, seed),
        other => return Err(format!("unknown family {other:?}")),
    };
    io::write_hypergraph_file(&PathBuf::from(out), &g)?;
    println!(
        "wrote {} ({} vertices, {} edges, rank {})",
        out,
        g.n,
        g.m(),
        g.rank()
    );
    Ok(())
}
