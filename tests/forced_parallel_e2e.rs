//! End-to-end run with the worker cap forced above the core count, so the
//! whole algorithm exercises its genuinely-parallel primitive paths even on
//! single-core CI boxes. Own test binary: the global cap stays in this
//! process.

use pbdmm::graph::{gen, workload, DeletionOrder};
use pbdmm::matching::driver::run_workload_with;
use pbdmm::matching::verify::check_invariants;
use pbdmm::primitives::par;
use pbdmm::{Batch, DynamicMatching};

#[test]
fn dynamic_matching_sound_under_forced_parallelism() {
    par::set_num_threads(4);
    assert!(par::should_par(1 << 20));

    // Big enough single batches that the greedy matcher's primitives cross
    // the parallel grain.
    let g = gen::erdos_renyi(4000, 16_000, 0xF0);
    let mut dm = DynamicMatching::with_seed(1);
    let out = dm
        .apply(Batch::new().inserts(g.edges.iter().cloned()))
        .unwrap();
    check_invariants(&dm).unwrap();
    let matched: Vec<_> = out
        .inserted
        .iter()
        .copied()
        .filter(|&e| dm.is_matched(e))
        .collect();
    // One mixed mega-batch: all matched edges out, a fresh wave in.
    let fresh: Vec<Vec<u32>> = (0..5000u32)
        .map(|i| vec![9000 + i, 9000 + (i + 1) % 5000])
        .collect();
    dm.apply(Batch::new().deletes(matched).inserts(fresh))
        .unwrap();
    check_invariants(&dm).unwrap();

    // And a full workload replay, checking invariants along the way.
    let w = workload::insert_then_delete(&g, 2048, DeletionOrder::VertexClustered, 0xF1);
    let mut dm = DynamicMatching::with_seed(2);
    run_workload_with(&mut dm, &w, |m| check_invariants(m).unwrap());
    assert_eq!(dm.num_edges(), 0);
}
