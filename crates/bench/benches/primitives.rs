//! Substrate bench: the §2 parallel primitives the algorithm is built on —
//! scan, filter, semisort/groupBy, random priorities, the batch dictionary.

use pbdmm_bench::BenchGroup;
use pbdmm_primitives::dict::ConcurrentU64Set;
use pbdmm_primitives::permutation::random_priorities;
use pbdmm_primitives::rng::SplitMix64;
use pbdmm_primitives::scan::{exclusive_scan, filter};
use pbdmm_primitives::semisort::group_by;

fn main() {
    let mut group = BenchGroup::new("primitives").sample_size(10);
    let n = 1 << 18;

    let xs: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();
    group.bench(&format!("exclusive_scan/{n}"), Some(n as u64), || {
        exclusive_scan(&xs)
    });
    group.bench(&format!("filter/{n}"), Some(n as u64), || {
        filter(&xs, |&x| x % 3 == 0)
    });

    let pairs: Vec<(u32, u32)> = (0..n as u32).map(|i| (i % 4096, i)).collect();
    group.bench(&format!("group_by/{n}"), Some(n as u64), || {
        group_by(pairs.clone())
    });

    let mut rng = SplitMix64::new(5);
    group.bench(&format!("random_priorities/{n}"), Some(n as u64), || {
        random_priorities(n, &mut rng)
    });

    let keys: Vec<u64> = (0..n as u64).collect();
    group.bench(&format!("dict_batch_insert/{n}"), Some(n as u64), || {
        let mut s = ConcurrentU64Set::with_capacity(n);
        s.batch_insert(&keys);
        s
    });

    // Bucket sort vs comparison sort on random priorities (§3's expected-
    // linear claim).
    let mut rng2 = SplitMix64::new(9);
    let random_keys: Vec<u64> = (0..n).map(|_| rng2.next_u64()).collect();
    group.bench(&format!("bucket_sort/{n}"), Some(n as u64), || {
        pbdmm_primitives::sort::bucket_sort_by_key(random_keys.clone(), |&x| x)
    });
    group.bench(&format!("comparison_sort/{n}"), Some(n as u64), || {
        let mut v = random_keys.clone();
        v.sort_unstable();
        v
    });
    group.finish();
}
