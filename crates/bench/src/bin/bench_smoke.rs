//! `bench_smoke` — the CI-gated quick benchmark.
//!
//! Runs a fixed-seed, fixed-workload subset of the benchmark suite in a
//! couple of minutes, writes the results as `BENCH_smoke.json`, and (in
//! `--baseline` mode) fails with a nonzero exit if any metric regressed more
//! than the tolerance against a checked-in baseline. All metrics are
//! throughputs (higher is better); the workloads and seeds are pinned so runs
//! are comparable across commits on the same machine class.
//!
//! ```text
//! bench_smoke --out BENCH_smoke.json                      # measure + write
//! bench_smoke --out BENCH_smoke.json \
//!             --baseline ci/BENCH_smoke_baseline.json \
//!             --tolerance 0.25                            # measure + gate
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use pbdmm_bench::json::{self, Value};
use pbdmm_bench::{fmt_f, Table};
use pbdmm_graph::gen;
use pbdmm_graph::workload::{churn, insert_then_delete, DeletionOrder};
use pbdmm_matching::driver::run_workload;
use pbdmm_matching::DynamicMatching;
use pbdmm_primitives::par;
use pbdmm_primitives::rng::SplitMix64;

/// Schema tag so the checker can refuse files from a different layout.
const SCHEMA: &str = "pbdmm-bench-smoke-v1";

struct Args {
    out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    samples: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        baseline: None,
        tolerance: 0.25,
        samples: std::env::var("PBDMM_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("--{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = Some(val("out")?),
            "--baseline" => args.baseline = Some(val("baseline")?),
            "--tolerance" => {
                args.tolerance = val("tolerance")?.parse().map_err(|e| format!("{e}"))?
            }
            "--samples" => args.samples = val("samples")?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Best-of-`samples` throughput for `f`, which does `units` units of work.
fn throughput(samples: usize, units: u64, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (first run pays pool spin-up and page faults)
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    units as f64 / best
}

/// Name of the machine-speed calibration metric: a fixed scalar hashing
/// loop. The regression checker divides every metric by it on both sides,
/// so the gate compares *scheduler/algorithm* changes, not runner hardware.
const CALIBRATION: &str = "calibration_scalar_hashes_per_s";

/// The fixed workload battery. Every metric name carries its thread count so
/// serial and parallel scheduler paths are gated independently.
fn run_battery(samples: usize) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();

    // Calibration first: pure sequential, allocation-free, fixed work.
    let n_cal = 1u64 << 22;
    metrics.insert(
        CALIBRATION.to_string(),
        throughput(samples, n_cal, || {
            let mut acc = 0u64;
            for i in 0..n_cal {
                acc = acc.wrapping_add(pbdmm_primitives::hash::mix64(i));
            }
            std::hint::black_box(acc);
        }),
    );

    // Mixed-batch dynamic updates: the acceptance-criteria workload. An
    // empty-to-empty churn stream of mixed batches on a mid-size sparse
    // graph, plus an insert-then-delete stream for the settle-heavy path.
    let g = gen::erdos_renyi(1 << 12, 1 << 14, 9);
    let w_churn = churn(&g, 384, 11);
    let w_itd = insert_then_delete(&g, 512, DeletionOrder::VertexClustered, 13);
    for threads in [1usize, 4] {
        par::set_num_threads(threads);
        metrics.insert(
            format!("dynamic_churn_updates_per_s_t{threads}"),
            throughput(samples, w_churn.total_updates() as u64, || {
                let mut dm = DynamicMatching::with_seed(1);
                run_workload(&mut dm, &w_churn);
            }),
        );
        metrics.insert(
            format!("dynamic_insert_delete_updates_per_s_t{threads}"),
            throughput(samples, w_itd.total_updates() as u64, || {
                let mut dm = DynamicMatching::with_seed(2);
                run_workload(&mut dm, &w_itd);
            }),
        );
    }

    // Dispatch-frequency metrics: many borderline-size parallel calls, the
    // shape level settlement actually produces (a few-thousand-element
    // semisort/scan per round). Scheduler overhead dominates here: this is
    // where spawn-per-call vs pooled dispatch shows directly.
    par::set_num_threads(4);
    let small: Vec<u64> = (0..16_384u64).map(|i| (i * 31) % 97).collect();
    metrics.insert(
        "repeated_scan_16k_elems_per_s_t4".into(),
        throughput(samples, 512 * small.len() as u64, || {
            for _ in 0..512 {
                std::hint::black_box(pbdmm_primitives::exclusive_scan(&small));
            }
        }),
    );
    let mut rng = SplitMix64::new(5);
    let small_pairs: Vec<(u32, u32)> = (0..8192)
        .map(|_| (rng.bounded(512) as u32, rng.next_u64() as u32))
        .collect();
    metrics.insert(
        "repeated_semisort_8k_pairs_per_s_t4".into(),
        throughput(samples, 256 * small_pairs.len() as u64, || {
            for _ in 0..256 {
                std::hint::black_box(pbdmm_primitives::group_by(small_pairs.clone()));
            }
        }),
    );

    // Primitive hot paths at full size: throughput parity check.
    let xs: Vec<u64> = (0..1u64 << 20).map(|i| (i * 31) % 97).collect();
    metrics.insert(
        // `info_` metrics are recorded but NOT gated: single-pass bandwidth
        // over 1M elements is dominated by host memory/CPU-steal noise
        // (observed >2× swings between identical runs on virtualized CI),
        // which no per-run calibration can normalize away.
        "info_scan_1m_elems_per_s_t4".into(),
        throughput(samples, xs.len() as u64, || {
            std::hint::black_box(pbdmm_primitives::exclusive_scan(&xs));
        }),
    );
    let mut rng = SplitMix64::new(7);
    let pairs: Vec<(u32, u32)> = (0..1 << 18)
        .map(|_| (rng.bounded(4096) as u32, rng.next_u64() as u32))
        .collect();
    metrics.insert(
        "semisort_pairs_per_s_t4".into(),
        throughput(samples, pairs.len() as u64, || {
            std::hint::black_box(pbdmm_primitives::group_by(pairs.clone()));
        }),
    );
    let keys: Vec<u64> = (0..1u64 << 19)
        .map(|i| i.wrapping_mul(0x9e37_79b9))
        .collect();
    metrics.insert(
        "sort_keys_per_s_t4".into(),
        throughput(samples, keys.len() as u64, || {
            let mut k = keys.clone();
            par::par_sort(&mut k);
            std::hint::black_box(k);
        }),
    );
    par::set_num_threads(0);
    metrics
}

fn to_json(metrics: &BTreeMap<String, f64>, samples: usize) -> Value {
    json::obj([
        ("schema".to_string(), Value::Str(SCHEMA.into())),
        ("samples".to_string(), Value::Num(samples as f64)),
        (
            "metrics".to_string(),
            Value::Obj(
                metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Num(*v)))
                    .collect(),
            ),
        ),
    ])
}

/// Compare against a baseline file; returns the number of regressions.
///
/// Every metric is first divided by the [`CALIBRATION`] metric *of its own
/// run*, so the comparison is machine-speed-normalized: a slower CI runner
/// scales both sides down together, and only genuine scheduler/algorithm
/// regressions move the ratio.
fn check_baseline(
    metrics: &BTreeMap<String, f64>,
    baseline_path: &str,
    tolerance: f64,
) -> Result<usize, String> {
    let text =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("parse {baseline_path}: {e}"))?;
    match doc.get("schema") {
        Some(Value::Str(s)) if s == SCHEMA => {}
        other => return Err(format!("baseline schema mismatch: {other:?}")),
    }
    let base = doc
        .get("metrics")
        .and_then(|m| m.as_obj())
        .ok_or("baseline has no metrics object")?;
    let base_cal = base
        .get(CALIBRATION)
        .and_then(|v| v.as_num())
        .filter(|c| *c > 0.0)
        .ok_or("baseline has no calibration metric")?;
    let cur_cal = metrics
        .get(CALIBRATION)
        .copied()
        .filter(|c| *c > 0.0)
        .ok_or("current run has no calibration metric")?;
    let mut table = Table::new(
        "bench-smoke vs baseline (calibration-normalized)",
        &["metric", "baseline", "current", "norm ratio", "status"],
    );
    let mut regressions = 0usize;
    for (name, bval) in base {
        // `info_` metrics are tracked in the JSON but too host-noisy to
        // gate; the calibration metric is the normalizer, not a gate.
        if name == CALIBRATION || name.starts_with("info_") {
            continue;
        }
        let Some(b) = bval.as_num().filter(|b| *b > 0.0) else {
            continue;
        };
        let Some(&cur) = metrics.get(name) else {
            regressions += 1;
            table.row(&[
                name.clone(),
                fmt_f(b),
                "missing".into(),
                "-".into(),
                "FAIL".into(),
            ]);
            continue;
        };
        let ratio = (cur / cur_cal) / (b / base_cal);
        let ok = ratio >= 1.0 - tolerance;
        if !ok {
            regressions += 1;
        }
        table.row(&[
            name.clone(),
            fmt_f(b),
            fmt_f(cur),
            format!("{ratio:.2}x"),
            if ok { "ok" } else { "FAIL" }.into(),
        ]);
    }
    table.print();
    Ok(regressions)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_smoke: {e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = run_battery(args.samples);

    let mut table = Table::new("bench-smoke", &["metric", "per second"]);
    for (k, v) in &metrics {
        table.row(&[k.clone(), fmt_f(*v)]);
    }
    table.print();

    if let Some(out) = &args.out {
        let doc = to_json(&metrics, args.samples);
        if let Err(e) = std::fs::write(out, doc.render()) {
            eprintln!("bench_smoke: write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {out}");
    }

    if let Some(baseline) = &args.baseline {
        match check_baseline(&metrics, baseline, args.tolerance) {
            Ok(0) => println!("\nno regressions beyond {:.0}%", args.tolerance * 100.0),
            Ok(n) => {
                eprintln!(
                    "\nbench_smoke: {n} metric(s) regressed more than {:.0}% vs {baseline}",
                    args.tolerance * 100.0
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("bench_smoke: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
