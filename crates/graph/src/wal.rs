//! Durable write-ahead log for mixed update [`Batch`]es.
//!
//! The format follows the [`crate::io`] conventions: plain text, one record
//! per line, whitespace-separated tokens, `#` starts a comment. A log is a
//! header followed by a sequence of *framed* batches:
//!
//! ```text
//! # pbdmm-wal v1
//! # structure: matching
//! # seed: 42
//! b 0          <- begin batch 0
//! d 17         <- delete the edge with id 17
//! i 0 1        <- insert the hyperedge {0, 1}
//! c 0          <- commit batch 0
//! b 1
//! ...
//! ```
//!
//! Two properties make this double as crash recovery *and* a trace-replay
//! harness:
//!
//! * **Insertions carry no edge id.** Ids are assigned deterministically by
//!   the structure at apply time (sequentially, in batch order), so replaying
//!   the same committed batch sequence into a fresh structure built with the
//!   same seed reassigns the identical ids — deletions recorded by id stay
//!   meaningful.
//! * **A batch is durable only once its `c` line is on disk.** The reader
//!   silently drops a trailing batch whose commit marker is missing (the
//!   writer crashed mid-append) and reports it via [`Wal::truncated`];
//!   everything committed before it replays normally.

use std::io::{BufRead, Write};

use crate::edge::{normalize_vertices, EdgeId};
use crate::update::{Batch, Update};

/// First line of every WAL file; the reader refuses anything else.
pub const WAL_MAGIC: &str = "pbdmm-wal v1";

/// Header metadata: which structure kind recorded the log and with which
/// RNG seed, so replay can rebuild an identically-seeded instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalMeta {
    /// Structure kind (`"matching"` or `"setcover"`; free-form for future
    /// structures — replayers dispatch on it).
    pub structure: String,
    /// The structure's private RNG seed at recording time.
    pub seed: u64,
    /// Whether the recording structure recycled deleted edge ids (the
    /// `# ids: recycling` header line; absent means monotonic). Replay must
    /// rebuild the structure in the same id mode, or recorded deletes land
    /// on the wrong edges.
    pub ids_recycling: bool,
}

impl Default for WalMeta {
    fn default() -> Self {
        WalMeta {
            structure: "matching".to_string(),
            seed: 0,
            ids_recycling: false,
        }
    }
}

/// A decoded log: header metadata plus every *committed* batch, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wal {
    /// Header metadata.
    pub meta: WalMeta,
    /// Sequence number of this log's first batch (the `# base:` header
    /// line). 0 for a standalone log; a rotated segment carries the running
    /// batch count at rotation, so segment continuity is checkable.
    pub base: u64,
    /// The committed batches, in append order.
    pub batches: Vec<Batch>,
    /// Per-batch routing annotation (the `# route:` line inside a batch
    /// frame): the position each of this log's updates held in the global
    /// batch it was split from. `None` means the batch *is* the global
    /// batch (identity route) — the only case a single-log WAL ever sees.
    /// Sharded WAL directories use routes to merge K per-shard sub-batch
    /// streams back into the original global batch sequence.
    pub routes: Vec<Option<Vec<u32>>>,
    /// Whether a trailing uncommitted batch was dropped (torn final append).
    pub truncated: bool,
}

impl Wal {
    /// Total updates across all committed batches.
    pub fn total_updates(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }
}

/// Write the WAL header (magic + metadata comments) for a standalone log
/// (base 0).
pub fn write_header<W: Write>(w: &mut W, meta: &WalMeta) -> std::io::Result<()> {
    write_segment_header(w, meta, 0)
}

/// Write the header of a log whose first batch carries sequence number
/// `base` — a rotated segment of a segmented WAL directory. Non-default
/// header lines (`# ids:`, `# base:`) are emitted only when needed, so a
/// standalone log's bytes are unchanged from the v1 format.
pub fn write_segment_header<W: Write>(w: &mut W, meta: &WalMeta, base: u64) -> std::io::Result<()> {
    writeln!(w, "# {WAL_MAGIC}")?;
    writeln!(w, "# structure: {}", meta.structure)?;
    writeln!(w, "# seed: {}", meta.seed)?;
    if meta.ids_recycling {
        writeln!(w, "# ids: recycling")?;
    }
    if base != 0 {
        writeln!(w, "# base: {base}")?;
    }
    Ok(())
}

/// Append one framed batch with sequence number `seq`. The batch is durable
/// once the trailing `c` line reaches stable storage (the caller decides
/// whether to flush and/or fsync).
pub fn write_batch<W: Write>(w: &mut W, seq: u64, batch: &Batch) -> std::io::Result<()> {
    writeln!(w, "b {seq}")?;
    for u in batch {
        write_update(w, u)?;
    }
    writeln!(w, "c {seq}")
}

/// Write one update record line (`d` or `i`).
fn write_update<W: Write>(w: &mut W, u: &Update) -> std::io::Result<()> {
    match u {
        Update::Delete(id) => writeln!(w, "d {}", id.raw()),
        Update::Insert(vs) => {
            let line: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
            writeln!(w, "i {}", line.join(" "))
        }
    }
}

/// Append one shard's sub-batch of a global batch: the updates of `global`
/// at `positions` (in order), framed under sequence number `seq` with a
/// `# route:` annotation recording those global positions so K per-shard
/// logs can be merged back into the global batch sequence. When `positions`
/// is exactly `0..global.len()` (this shard owns the whole batch) the route
/// line is omitted and the bytes equal [`write_batch`] — readers treat an
/// absent route as the identity claim. An empty `positions` writes an empty
/// framed batch (plus an explicit empty route), keeping per-log sequence
/// numbers contiguous across shards.
pub fn write_routed_batch<W: Write>(
    w: &mut W,
    seq: u64,
    global: &Batch,
    positions: &[u32],
) -> std::io::Result<()> {
    writeln!(w, "b {seq}")?;
    let identity = positions.len() == global.len()
        && positions.iter().enumerate().all(|(i, &p)| p as usize == i);
    if !identity {
        if positions.is_empty() {
            writeln!(w, "# route:")?;
        } else {
            let line: Vec<String> = positions.iter().map(|p| p.to_string()).collect();
            writeln!(w, "# route: {}", line.join(" "))?;
        }
    }
    let updates = global.as_slice();
    for &p in positions {
        write_update(w, &updates[p as usize])?;
    }
    writeln!(w, "c {seq}")
}

/// Re-serialize an already-split sub-batch exactly as it was decoded: its
/// own updates plus its recorded route annotation (`None` writes no route
/// line). Used when sharded recovery rewrites a segment tail to drop
/// batches past the consistency cut.
pub fn write_batch_with_route<W: Write>(
    w: &mut W,
    seq: u64,
    batch: &Batch,
    route: Option<&[u32]>,
) -> std::io::Result<()> {
    writeln!(w, "b {seq}")?;
    if let Some(route) = route {
        if route.is_empty() {
            writeln!(w, "# route:")?;
        } else {
            let line: Vec<String> = route.iter().map(|p| p.to_string()).collect();
            writeln!(w, "# route: {}", line.join(" "))?;
        }
    }
    for u in batch {
        write_update(w, u)?;
    }
    writeln!(w, "c {seq}")
}

/// Strip a comment line (`# ...`, with arbitrary whitespace after the `#`)
/// down to its content, or `None` if `line` is not a comment line.
fn comment_body(line: &str) -> Option<&str> {
    line.trim().strip_prefix('#').map(str::trim)
}

/// Parse a WAL from reader contents. Errors name the offending line;
/// a trailing uncommitted batch is dropped (see [`Wal::truncated`]).
///
/// Crash tolerance covers *partial* tears too: a malformed line is a hard
/// error only when well-formed content follows it (real corruption). When
/// the malformed line is the last content in the file — `c 12` torn to
/// `c `, a half-written token, a truncated vertex list — it is the torn
/// final append: it and the open batch are dropped and `truncated` is set,
/// so every committed batch before the crash still recovers.
pub fn read_wal<R: BufRead>(reader: R) -> Result<Wal, String> {
    let mut meta = WalMeta::default();
    let mut base: u64 = 0;
    let mut batches: Vec<Batch> = Vec::new();
    let mut routes: Vec<Option<Vec<u32>>> = Vec::new();
    let mut open: Option<(u64, Batch, Option<Vec<u32>>)> = None;
    let mut saw_magic = false;
    // A malformed line becomes a hard error only if more content follows
    // it; held here until that is known (EOF with a pending error = the
    // torn tail of a crashed append). Streaming: one line buffered at a
    // time, so replaying multi-GB traces stays O(1) in memory.
    let mut pending_err: Option<String> = None;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: io error: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(err) = pending_err {
            // Content after a malformed line: real corruption.
            return Err(err);
        }
        if let Err(msg) = parse_line(
            trimmed,
            lineno,
            &mut open,
            &mut batches,
            &mut routes,
            &mut meta,
            &mut base,
            &mut saw_magic,
        ) {
            if !saw_magic {
                // Header problems are never a torn append.
                return Err(msg);
            }
            pending_err = Some(msg);
        }
    }
    if !saw_magic {
        return Err(format!("empty input: expected `# {WAL_MAGIC}` header"));
    }
    let torn = pending_err.is_some();
    if torn {
        // The malformed line was the file's last content: the torn tail of
        // a crashed append. Drop it and the open batch; everything
        // committed before it stands.
        open = None;
    }
    Ok(Wal {
        truncated: open.is_some() || torn,
        meta,
        base,
        batches,
        routes,
    })
}

/// Parse one non-empty WAL line into the reader state.
#[allow(clippy::too_many_arguments)]
fn parse_line(
    trimmed: &str,
    lineno: usize,
    open: &mut Option<(u64, Batch, Option<Vec<u32>>)>,
    batches: &mut Vec<Batch>,
    routes: &mut Vec<Option<Vec<u32>>>,
    meta: &mut WalMeta,
    base: &mut u64,
    saw_magic: &mut bool,
) -> Result<(), String> {
    let at = |msg: String| format!("line {}: {msg}", lineno + 1);
    if let Some(body) = comment_body(trimmed) {
        if !*saw_magic {
            if body != WAL_MAGIC {
                return Err(at(format!("not a WAL: expected `# {WAL_MAGIC}`")));
            }
            *saw_magic = true;
        } else if let Some(rest) = body.strip_prefix("structure:") {
            meta.structure = rest.trim().to_string();
        } else if let Some(rest) = body.strip_prefix("seed:") {
            meta.seed = rest
                .trim()
                .parse()
                .map_err(|e| at(format!("bad seed: {e}")))?;
        } else if let Some(rest) = body.strip_prefix("ids:") {
            meta.ids_recycling = match rest.trim() {
                "recycling" => true,
                "monotonic" => false,
                other => return Err(at(format!("unknown id mode {other:?}"))),
            };
        } else if let Some(rest) = body.strip_prefix("base:") {
            if !batches.is_empty() || open.is_some() {
                return Err(at("`# base:` after the first batch".into()));
            }
            *base = rest
                .trim()
                .parse()
                .map_err(|e| at(format!("bad base: {e}")))?;
        } else if let Some(rest) = body.strip_prefix("route:") {
            let (_, _, route) = open
                .as_mut()
                .ok_or_else(|| at("`# route:` outside a batch".into()))?;
            if route.is_some() {
                return Err(at("duplicate `# route:` in one batch".into()));
            }
            let mut positions = Vec::new();
            for tok in rest.split_whitespace() {
                positions.push(
                    tok.parse()
                        .map_err(|e| at(format!("bad route position {tok:?}: {e}")))?,
                );
            }
            *route = Some(positions);
        }
        return Ok(());
    }
    if !*saw_magic {
        return Err(at(format!("not a WAL: expected `# {WAL_MAGIC}`")));
    }
    let mut toks = trimmed.split_whitespace();
    let tag = toks.next().expect("non-empty line has a first token");
    match tag {
        "b" => {
            if open.is_some() {
                return Err(at("batch begun inside an open batch".into()));
            }
            let seq: u64 = toks
                .next()
                .ok_or_else(|| at("`b` needs a sequence number".into()))?
                .parse()
                .map_err(|e| at(format!("bad sequence number: {e}")))?;
            let expected = *base + batches.len() as u64;
            if seq != expected {
                return Err(at(format!(
                    "out-of-order batch: expected seq {expected}, got {seq}"
                )));
            }
            *open = Some((seq, Batch::new(), None));
        }
        "d" => {
            let (_, batch, _) = open
                .as_mut()
                .ok_or_else(|| at("`d` outside a batch".into()))?;
            let id: u64 = toks
                .next()
                .ok_or_else(|| at("`d` needs an edge id".into()))?
                .parse()
                .map_err(|e| at(format!("bad edge id: {e}")))?;
            batch.push(Update::Delete(EdgeId(id)));
        }
        "i" => {
            let (_, batch, _) = open
                .as_mut()
                .ok_or_else(|| at("`i` outside a batch".into()))?;
            let mut vs = Vec::new();
            for tok in toks {
                vs.push(
                    tok.parse()
                        .map_err(|e| at(format!("bad vertex id {tok:?}: {e}")))?,
                );
            }
            let vs = normalize_vertices(vs).ok_or_else(|| at("empty insert".into()))?;
            batch.push(Update::Insert(vs));
        }
        "c" => {
            let (seq, batch, route) = open
                .take()
                .ok_or_else(|| at("`c` without an open batch".into()))?;
            let commit: u64 = toks
                .next()
                .ok_or_else(|| at("`c` needs a sequence number".into()))?
                .parse()
                .map_err(|e| at(format!("bad sequence number: {e}")))?;
            if commit != seq {
                return Err(at(format!(
                    "commit seq {commit} does not match open batch {seq}"
                )));
            }
            if let Some(route) = &route {
                if route.len() != batch.len() {
                    return Err(at(format!(
                        "route lists {} positions for a batch of {} updates",
                        route.len(),
                        batch.len()
                    )));
                }
            }
            batches.push(batch);
            routes.push(route);
        }
        other => return Err(at(format!("unknown record tag {other:?}"))),
    }
    Ok(())
}

/// Parse a WAL from a file path.
pub fn read_wal_file(path: &std::path::Path) -> Result<Wal, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
    read_wal(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Wal, String> {
        read_wal(std::io::Cursor::new(s))
    }

    fn sample_batches() -> Vec<Batch> {
        vec![
            Batch::new().inserts([vec![0, 1], vec![1, 2, 3]]),
            Batch::new().delete(EdgeId(0)).insert(vec![4, 5]),
            Batch::new().deletes([EdgeId(1), EdgeId(2)]),
        ]
    }

    #[test]
    fn round_trips_batches_and_meta() {
        let meta = WalMeta {
            structure: "setcover".into(),
            seed: 99,
            ids_recycling: true,
        };
        let mut buf = Vec::new();
        write_header(&mut buf, &meta).unwrap();
        for (seq, b) in sample_batches().iter().enumerate() {
            write_batch(&mut buf, seq as u64, b).unwrap();
        }
        let wal = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(wal.meta, meta);
        assert_eq!(wal.batches, sample_batches());
        assert!(!wal.truncated);
        assert_eq!(wal.total_updates(), 6);
    }

    #[test]
    fn trailing_uncommitted_batch_is_dropped() {
        let mut buf = Vec::new();
        write_header(&mut buf, &WalMeta::default()).unwrap();
        write_batch(&mut buf, 0, &Batch::new().insert(vec![0, 1])).unwrap();
        // A torn append: `b`/`i` written, crash before `c`.
        buf.extend_from_slice(b"b 1\ni 2 3\n");
        let wal = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(wal.batches.len(), 1);
        assert!(wal.truncated);
    }

    #[test]
    fn insert_lines_normalize_vertices() {
        let wal = parse("# pbdmm-wal v1\nb 0\ni 3 1 3 2\nc 0\n").unwrap();
        assert_eq!(wal.batches[0].as_slice(), &[Update::Insert(vec![1, 2, 3])]);
    }

    #[test]
    fn tolerant_header_spellings() {
        let wal = parse("#   pbdmm-wal v1\n#structure:   setcover\n#seed:7\n").unwrap();
        assert_eq!(wal.meta.structure, "setcover");
        assert_eq!(wal.meta.seed, 7);
        assert!(!wal.meta.ids_recycling);
        assert_eq!(wal.base, 0);
    }

    #[test]
    fn segment_headers_round_trip_base_and_id_mode() {
        let meta = WalMeta {
            ids_recycling: true,
            ..Default::default()
        };
        let mut buf = Vec::new();
        write_segment_header(&mut buf, &meta, 42).unwrap();
        write_batch(&mut buf, 42, &Batch::new().insert(vec![0, 1])).unwrap();
        write_batch(&mut buf, 43, &Batch::new().insert(vec![2, 3])).unwrap();
        let wal = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(wal.base, 42);
        assert!(wal.meta.ids_recycling);
        assert_eq!(wal.batches.len(), 2);
        // Batch seqs must continue from the base exactly.
        assert!(parse("# pbdmm-wal v1\n# base: 5\nb 0\nc 0\nb 6\nc 6\n").is_err());
        // A base line after content is corruption, not metadata.
        assert!(parse("# pbdmm-wal v1\nb 0\nc 0\n# base: 5\nb 5\nc 5\n").is_err());
        // The standalone header writer stays byte-compatible (no new lines).
        let mut plain = Vec::new();
        write_header(&mut plain, &WalMeta::default()).unwrap();
        assert_eq!(
            std::str::from_utf8(&plain).unwrap(),
            "# pbdmm-wal v1\n# structure: matching\n# seed: 0\n"
        );
    }

    #[test]
    fn partial_final_line_tears_are_dropped() {
        // Commit marker torn mid-token: the committed prefix recovers.
        let wal = parse("# pbdmm-wal v1\nb 0\ni 0 1\nc 0\nb 1\ni 2 3\nc ").unwrap();
        assert_eq!(wal.batches.len(), 1);
        assert!(wal.truncated);
        // Half-written record tag.
        let wal = parse("# pbdmm-wal v1\nb 0\ni 0 1\nc 0\nb 1\nin").unwrap();
        assert_eq!(wal.batches.len(), 1);
        assert!(wal.truncated);
        // Torn mid-number: `d 35` persisted as `d 3x`? no — but `b 1` torn
        // to `b` alone is a tear too.
        let wal = parse("# pbdmm-wal v1\nb 0\ni 0 1\nc 0\nb").unwrap();
        assert_eq!(wal.batches.len(), 1);
        assert!(wal.truncated);
        // A contextually invalid LAST line is also treated as a tear (e.g.
        // `c 12` torn to `c 1` can mimic a commit mismatch): nothing
        // committed is lost, and `truncated` reports the drop.
        let wal = parse("# pbdmm-wal v1\nd 3\n").unwrap();
        assert!(wal.batches.is_empty());
        assert!(wal.truncated);
    }

    #[test]
    fn routed_batches_round_trip_positions() {
        let global = Batch::new()
            .delete(EdgeId(7))
            .insert(vec![0, 1])
            .insert(vec![2, 3])
            .insert(vec![4, 5]);
        let mut buf = Vec::new();
        write_header(&mut buf, &WalMeta::default()).unwrap();
        // This shard owns the delete and the middle insert.
        write_routed_batch(&mut buf, 0, &global, &[0, 2]).unwrap();
        // Not a single update of the next global batch lands here.
        write_routed_batch(&mut buf, 1, &global, &[]).unwrap();
        let wal = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(
            wal.batches[0].as_slice(),
            &[Update::Delete(EdgeId(7)), Update::Insert(vec![2, 3])]
        );
        assert_eq!(wal.routes[0], Some(vec![0, 2]));
        assert!(wal.batches[1].is_empty());
        assert_eq!(wal.routes[1], Some(vec![]));
        assert!(!wal.truncated);
    }

    #[test]
    fn identity_routes_stay_byte_compatible_with_plain_batches() {
        let global = Batch::new().insert(vec![0, 1]).delete(EdgeId(3));
        let positions: Vec<u32> = (0..global.len() as u32).collect();
        let (mut routed, mut plain) = (Vec::new(), Vec::new());
        write_routed_batch(&mut routed, 5, &global, &positions).unwrap();
        write_batch(&mut plain, 5, &global).unwrap();
        // An owner-of-everything sub-batch is indistinguishable from the
        // unsharded format: no route line, same bytes.
        assert_eq!(routed, plain);
        let mut buf = Vec::new();
        write_header(&mut buf, &WalMeta::default()).unwrap();
        write_batch(&mut buf, 0, &global).unwrap();
        let wal = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(wal.routes, vec![None]);
    }

    #[test]
    fn torn_route_lines_drop_the_open_batch() {
        // A route line torn mid-token is the last content in the file: the
        // open batch (which never committed) is dropped, not an error.
        let wal = parse("# pbdmm-wal v1\nb 0\ni 0 1\nc 0\nb 1\n# route: 1 x").unwrap();
        assert_eq!(wal.batches.len(), 1);
        assert!(wal.truncated);
        // Torn so early it reads as an unknown comment: still just an open
        // batch with no commit marker, dropped the same way.
        let wal = parse("# pbdmm-wal v1\nb 0\ni 0 1\nc 0\nb 1\n# rou").unwrap();
        assert_eq!(wal.batches.len(), 1);
        assert!(wal.truncated);
    }

    #[test]
    fn rejects_malformed_routes() {
        assert!(
            parse("# pbdmm-wal v1\n# route: 0\nb 0\nc 0\n").is_err(),
            "route outside a batch"
        );
        assert!(
            parse("# pbdmm-wal v1\nb 0\n# route: 0\n# route: 0\ni 0 1\nc 0\n").is_err(),
            "duplicate route"
        );
        assert!(
            parse("# pbdmm-wal v1\nb 0\n# route: 0 1\ni 0 1\nc 0\nb 1\nc 1\n").is_err(),
            "route/batch length mismatch"
        );
    }

    #[test]
    fn rejects_malformed_logs() {
        assert!(parse("").is_err(), "empty input");
        assert!(parse("b 0\nc 0\n").is_err(), "missing magic");
        assert!(parse("# some other file\n").is_err(), "wrong magic");
        // Malformed content *followed by more content* is corruption, not a
        // torn tail — every case below has a well-formed line after the
        // offending one.
        assert!(
            parse("# pbdmm-wal v1\nd 3\nb 0\nc 0\n").is_err(),
            "record outside batch"
        );
        assert!(
            parse("# pbdmm-wal v1\nb 0\nb 1\nc 1\n").is_err(),
            "nested begin"
        );
        assert!(
            parse("# pbdmm-wal v1\nb 0\nc 1\nb 1\nc 1\n").is_err(),
            "commit mismatch"
        );
        assert!(
            parse("# pbdmm-wal v1\nb 1\nc 1\n").is_err(),
            "gap in sequence"
        );
        assert!(
            parse("# pbdmm-wal v1\nb 0\ni\nc 0\n").is_err(),
            "empty insert"
        );
        assert!(
            parse("# pbdmm-wal v1\nb 0\nq 1\nc 0\n").is_err(),
            "unknown tag"
        );
        assert!(parse("# pbdmm-wal v1\nb 0\nd x\nc 0\n").is_err(), "bad id");
    }
}
