//! Property tests for the parallel primitives against sequential oracles:
//! whatever rayon does with scheduling, results must equal the obvious
//! single-threaded computation.

use proptest::collection::vec;
use proptest::prelude::*;

use pbdmm_primitives::dict::ConcurrentU64Set;
use pbdmm_primitives::find_next::find_next_in;
use pbdmm_primitives::permutation::{priorities_to_order, random_priorities};
use pbdmm_primitives::rng::SplitMix64;
use pbdmm_primitives::scan::{exclusive_scan, filter, inclusive_scan, pack_indices};
use pbdmm_primitives::semisort::{count_by, group_by, remove_duplicates, sum_by};
use pbdmm_primitives::sort::{bucket_sort_by_key, bucket_sort_ord};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exclusive_scan_matches_fold(xs in vec(0u64..1_000_000, 0..5000)) {
        let (scan, total) = exclusive_scan(&xs);
        let mut acc = 0u64;
        for (s, &x) in scan.iter().zip(&xs) {
            prop_assert_eq!(*s, acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn inclusive_scan_is_exclusive_plus_self(xs in vec(0u64..1000, 0..3000)) {
        let inc = inclusive_scan(&xs);
        let (exc, _) = exclusive_scan(&xs);
        for i in 0..xs.len() {
            prop_assert_eq!(inc[i], exc[i] + xs[i]);
        }
    }

    #[test]
    fn filter_matches_iterator_filter(xs in vec(0i64..100, 0..8000), k in 1i64..10) {
        let got = filter(&xs, |&x| x % k == 0);
        let want: Vec<i64> = xs.iter().copied().filter(|&x| x % k == 0).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pack_indices_matches_positions(flags in vec(any::<bool>(), 0..8000)) {
        let got = pack_indices(&flags);
        let want: Vec<usize> = flags.iter().enumerate().filter_map(|(i, &f)| f.then_some(i)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn group_by_preserves_multiset(pairs in vec((0u8..32, any::<u32>()), 0..6000)) {
        let groups = group_by(pairs.clone());
        let mut got: Vec<(u8, u32)> = groups
            .iter()
            .flat_map(|(k, vs)| vs.iter().map(move |&v| (*k, v)))
            .collect();
        let mut want = pairs;
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sum_by_matches_hashmap_fold(pairs in vec((0u16..100, 0u64..1000), 0..6000)) {
        let mut want = std::collections::HashMap::new();
        for &(k, v) in &pairs {
            *want.entry(k).or_insert(0u64) += v;
        }
        let got = sum_by(pairs);
        prop_assert_eq!(got.len(), want.len());
        for (k, v) in got {
            prop_assert_eq!(want.get(&k), Some(&v));
        }
    }

    #[test]
    fn count_by_and_dedup_agree(keys in vec(0u32..64, 0..6000)) {
        let counts = count_by(keys.clone());
        let dedup = remove_duplicates(keys.clone());
        prop_assert_eq!(counts.len(), dedup.len());
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total as usize, keys.len());
        let from_counts: std::collections::HashSet<u32> = counts.iter().map(|&(k, _)| k).collect();
        let from_dedup: std::collections::HashSet<u32> = dedup.into_iter().collect();
        prop_assert_eq!(from_counts, from_dedup);
    }

    #[test]
    fn bucket_sort_equals_comparison_sort(seed in any::<u64>(), n in 0usize..5000) {
        let mut rng = SplitMix64::new(seed);
        let xs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let got = bucket_sort_by_key(xs.clone(), |&x| x);
        let mut want = xs;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bucket_sort_ord_equals_comparison_sort(pairs in vec((any::<u64>(), any::<u32>()), 0..5000)) {
        let got = bucket_sort_ord(pairs.clone(), |t| t.0);
        let mut want = pairs;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn find_next_equals_linear_scan(xs in vec(0u8..4, 0..500), start in 0usize..520) {
        let got = find_next_in(&xs, start, |&x| x == 3);
        let want = (start..xs.len()).find(|&j| xs[j] == 3);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn priorities_induce_uniform_support_permutation(n in 0usize..2000, seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let pri = random_priorities(n, &mut rng);
        let order = priorities_to_order(&pri);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn dict_agrees_with_hashset(ops in vec((any::<bool>(), 0u64..500), 0..2000)) {
        // Pre-size: single-item insert is a phase operation and does not
        // grow the table (see the method docs).
        let dict = ConcurrentU64Set::with_capacity(600);
        let mut oracle = std::collections::HashSet::new();
        for (insert, key) in ops {
            if insert {
                prop_assert_eq!(dict.insert(key), oracle.insert(key));
            } else {
                prop_assert_eq!(dict.remove(key), oracle.remove(&key));
            }
        }
        prop_assert_eq!(dict.len(), oracle.len());
        for key in 0..500u64 {
            prop_assert_eq!(dict.contains(key), oracle.contains(&key));
        }
        let mut elems = dict.elements();
        elems.sort_unstable();
        let mut want: Vec<u64> = oracle.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(elems, want);
    }

    #[test]
    fn dict_batch_ops_agree_with_hashset(
        ins in vec(0u64..2000, 0..1500),
        del in vec(0u64..2000, 0..1500),
    ) {
        let mut dict = ConcurrentU64Set::new();
        dict.batch_insert(&ins);
        dict.batch_remove(&del);
        let mut oracle: std::collections::HashSet<u64> = ins.iter().copied().collect();
        for d in &del {
            oracle.remove(d);
        }
        prop_assert_eq!(dict.len(), oracle.len());
        let member = dict.batch_contains(&(0..2000u64).collect::<Vec<_>>());
        for (k, &m) in member.iter().enumerate() {
            prop_assert_eq!(m, oracle.contains(&(k as u64)), "key {}", k);
        }
    }
}
