//! Statistical validation of the paper's quantitative claims with fixed
//! seeds — the test-suite versions of experiments E1/E2/E4/E6/E7.
//! Thresholds carry generous slack over the theoretical constants so the
//! tests are robust to seed choice while still catching asymptotic
//! regressions (e.g. an accidental O(deg) path would blow all of them up).

use pbdmm::graph::gen;
use pbdmm::graph::workload::{churn, insert_then_delete, DeletionOrder};
use pbdmm::matching::driver::run_workload;
use pbdmm::matching::parallel_greedy_match;
use pbdmm::primitives::cost::CostMeter;
use pbdmm::primitives::rng::SplitMix64;
use pbdmm::DynamicMatching;

/// E1: metered work per update must not grow with the graph (r = 2).
#[test]
fn work_per_update_is_flat_in_graph_size() {
    let mut per_update = Vec::new();
    for &n in &[1usize << 9, 1 << 11, 1 << 13] {
        let g = gen::erdos_renyi(n, 4 * n, 0xA1);
        let w = insert_then_delete(&g, 256, DeletionOrder::Uniform, 0xB2);
        let mut dm = DynamicMatching::with_seed(1);
        let r = run_workload(&mut dm, &w);
        per_update.push(r.work_per_update());
    }
    let (first, last) = (per_update[0], *per_update.last().unwrap());
    assert!(
        last < 2.0 * first,
        "work/update grew with m: {per_update:?} (expected ~constant)"
    );
}

/// E2: work per update grows at most ~r³ in the rank.
#[test]
fn work_per_update_bounded_by_rank_cubed() {
    let mut per_update = Vec::new();
    let ranks = [2usize, 4, 8];
    for &r in &ranks {
        let g = gen::random_hypergraph(2000, 8000, r, 0xC3);
        let w = churn(&g, 256, 0xD4);
        let mut dm = DynamicMatching::with_seed(2);
        let rep = run_workload(&mut dm, &w);
        per_update.push(rep.work_per_update());
    }
    // Going from r=2 to r=8 (4x) the bound allows 64x; assert we stay well
    // inside it (and sanity-check the cost does grow with r at all).
    let ratio = per_update[2] / per_update[0];
    assert!(
        ratio < 64.0,
        "work grew faster than r^3: {per_update:?} (ratio {ratio})"
    );
    assert!(
        per_update[2] > per_update[0],
        "rank had no cost effect: {per_update:?}"
    );
}

/// E4: greedy parallel rounds are O(log m).
#[test]
fn greedy_rounds_logarithmic() {
    for &m in &[1usize << 12, 1 << 15] {
        let g = gen::erdos_renyi(m / 4, m, 0xE5);
        let mut rng = SplitMix64::new(3);
        let res = parallel_greedy_match(&g.edges, &mut rng, &CostMeter::new());
        let lg = (m as f64).log2();
        assert!(
            (res.rounds as f64) < 6.0 * lg,
            "m={m}: {} rounds vs lg m = {lg:.1}",
            res.rounds
        );
    }
}

/// E6: mean payment per user delete ≤ 2 (expected), every deletion order.
#[test]
fn mean_payment_at_most_two_ish() {
    let g = gen::erdos_renyi(1 << 11, 1 << 13, 0xF6);
    for order in [
        DeletionOrder::Uniform,
        DeletionOrder::Fifo,
        DeletionOrder::Lifo,
        DeletionOrder::VertexClustered,
        DeletionOrder::DegreeBiased,
    ] {
        let w = insert_then_delete(&g, 256, order, 0xAB);
        let mut dm = DynamicMatching::with_seed(4);
        run_workload(&mut dm, &w);
        let phi = dm.stats().mean_payment();
        assert!(phi <= 2.5, "{order:?}: mean payment {phi} > 2.5");
    }
}

/// E7 (Lemma 5.6): every settle round's added sample mass at least twice
/// the deleted sample mass — this one is structural, not just expected.
#[test]
fn settle_rounds_respect_sample_ledger() {
    // Power-law + clustered churn generates real settle activity.
    let g = gen::preferential_attachment(1 << 11, 6, 0x77);
    let w = insert_then_delete(&g, 512, DeletionOrder::VertexClustered, 0x78);
    let mut dm = DynamicMatching::with_seed(5);
    run_workload(&mut dm, &w);
    let s = dm.stats();
    let min_ratio = s.min_round_sample_ratio();
    if min_ratio.is_finite() {
        assert!(
            min_ratio >= 2.0,
            "Lemma 5.6 violated: min S_a/S_d = {min_ratio}"
        );
    }
}

/// E7 (Lemma 5.7): across an empty-to-empty run, natural sample mass is at
/// least a third of induced sample mass.
#[test]
fn natural_sample_mass_dominates() {
    let g = gen::preferential_attachment(1 << 11, 6, 0x79);
    let w = churn(&g, 256, 0x80);
    let mut dm = DynamicMatching::with_seed(6);
    run_workload(&mut dm, &w);
    let ratio = dm.stats().natural_to_induced_ratio();
    assert!(ratio > 1.0 / 3.0, "Lemma 5.7 violated: S_n/S_i = {ratio}");
}

/// Static matcher's metered work is linear in total cardinality.
#[test]
fn static_work_linear_in_total_cardinality() {
    let mut per_card = Vec::new();
    for &m in &[1usize << 12, 1 << 15] {
        let g = gen::erdos_renyi(m / 4, m, 0x91);
        let meter = CostMeter::new();
        let mut rng = SplitMix64::new(7);
        parallel_greedy_match(&g.edges, &mut rng, &meter);
        per_card.push(meter.work() as f64 / g.total_cardinality() as f64);
    }
    assert!(
        per_card[1] < 2.0 * per_card[0],
        "static work superlinear: {per_card:?}"
    );
}

/// Depth proxy (Lemma 5.11): settle iterations per batch stay logarithmic.
#[test]
fn settle_iterations_per_batch_logarithmic() {
    let g = gen::preferential_attachment(1 << 12, 8, 0x99);
    let w = insert_then_delete(&g, 1024, DeletionOrder::VertexClustered, 0x9A);
    let mut dm = DynamicMatching::with_seed(8);
    let mut max_iters = 0u64;
    pbdmm::matching::driver::run_workload_with(&mut dm, &w, |m| {
        max_iters = max_iters.max(m.last_batch().settle_iterations);
    });
    let lg = (g.m() as f64).log2();
    assert!(
        (max_iters as f64) <= 3.0 * lg,
        "settle iterations {max_iters} vs lg m {lg:.1}"
    );
}
