//! # pbdmm-matching
//!
//! Parallel batch-dynamic maximal matching on graphs and hypergraphs with
//! constant (resp. `O(r³)`) expected amortized work per edge update —
//! a reproduction of *Blelloch & Brady, SPAA 2025*.
//!
//! * [`api`] — the unified batch-update surface: [`Update`]/[`Batch`], the
//!   [`BatchDynamic`] trait every contender implements, [`BatchOutcome`],
//!   [`UpdateError`], and [`DynamicMatchingBuilder`].
//! * [`greedy`] — the static random greedy maximal matcher (§3): the
//!   sequential oracle (Fig. 1) and the work-efficient parallel
//!   implementation (Fig. 2, Lemma 1.3) that computes the identical
//!   lexicographically-first matching with sample spaces.
//! * [`level`] — the leveled matching structure (Definition 4.1, Table 1).
//! * [`dynamic`] — the batch-dynamic algorithm (Fig. 3/4, Theorem 1.1):
//!   [`DynamicMatching`].
//! * [`baseline`] — comparators: static recompute per batch, a naive
//!   neighbor-rescan dynamic algorithm, and single-update (sequential
//!   dynamic model) driving.
//! * [`driver`] — replay an oblivious workload against any [`BatchDynamic`].
//! * [`snapshot`] — the epoch-versioned read path: immutable
//!   [`MatchingSnapshot`]s published after every batch via an atomic-swap
//!   `Arc`, so concurrent readers query while batches apply.
//! * [`verify`] — invariant checking (used pervasively in tests).
//! * [`stats`] — epoch/payment accounting mirroring the paper's charging
//!   scheme, consumed by the experiment harness.
//!
//! ## Quickstart
//!
//! One structure, one entry point: [`DynamicMatching::apply`] consumes a
//! mixed [`Batch`] of insertions and deletions and settles them in a single
//! leveled round, exactly the paper's single-batch semantics.
//!
//! ```
//! use pbdmm_matching::api::Batch;
//! use pbdmm_matching::DynamicMatching;
//!
//! let mut m = DynamicMatching::with_seed(42);
//! let out = m
//!     .apply(Batch::new().inserts([vec![0, 1], vec![1, 2], vec![2, 3]]))
//!     .unwrap();
//! assert!(m.matching_size() >= 1);
//!
//! // Mixed batch: delete one edge, insert another — one settlement round.
//! let out = m
//!     .apply(Batch::new().delete(out.inserted[0]).insert(vec![3, 4]))
//!     .unwrap();
//! assert_eq!(out.deleted_count(), 1);
//! // The matching is maintained maximal after every batch.
//! assert!(pbdmm_matching::verify::check_invariants(&m).is_ok());
//! ```
//!
//! The legacy split calls still work (`insert_edges` returns ids,
//! `delete_edges` now returns the ids that were actually live):
//!
//! ```
//! use pbdmm_matching::DynamicMatching;
//!
//! let mut m = DynamicMatching::with_seed(42);
//! let ids = m.insert_edges(&[vec![0, 1], vec![1, 2]]);
//! let gone = m.delete_edges(&ids);
//! assert_eq!(gone, ids);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod baseline;
pub mod checkpoint;
pub mod driver;
pub mod dynamic;
pub mod greedy;
pub mod level;
pub mod snapshot;
pub mod stats;
pub mod verify;

pub use api::{
    Batch, BatchDynamic, BatchOutcome, DynamicMatchingBuilder, MeterMode, Update, UpdateError,
    UpdateOutcome,
};
pub use checkpoint::Checkpoint;
pub use dynamic::{BatchReport, DynamicMatching, LevelOccupancy, StorageStats};
pub use greedy::{
    parallel_greedy_match, parallel_greedy_match_in, parallel_greedy_match_with_priorities,
    parallel_greedy_match_with_priorities_in, sequential_greedy_match,
    sequential_greedy_match_with_priorities, GreedyScratch, MatchResult,
};
pub use level::{EdgeType, LeveledStructure, LevelingConfig};
pub use snapshot::{
    Changes, MatchingSnapshot, Snapshot, SnapshotCell, SnapshotDelta, SnapshotReader,
    SnapshotStats, Snapshots,
};
pub use stats::{EpochEnd, MatchingStats};
