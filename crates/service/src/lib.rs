//! # pbdmm-service
//!
//! The concurrent **ingest/serve layer** over any batch-dynamic structure:
//! turns a firehose of individual updates from many producer threads into
//! the well-formed mixed batches the paper's algorithm is efficient on —
//! the way bulk-synchronous streaming systems amortize per-update cost into
//! supersteps.
//!
//! Lifecycle (`ingress → coalesce → WAL → apply → complete`):
//!
//! 1. **Ingress** — producers submit single [`Update`]s through a cloneable
//!    [`ServiceHandle`] (an MPSC channel); each submission returns a
//!    [`Ticket`].
//! 2. **Coalesce** — one coalescer thread drains the ingress under a
//!    size/latency [`CoalescePolicy`] (flush at `max_batch` updates or
//!    `max_delay` after the first, whichever first) and resolves conflicts
//!    per the strict `apply` contract: deletions ordered before insertions,
//!    in-batch duplicate deletes deduplicated, a delete of an edge inserted
//!    by the same pending batch deferred to the next one, and individually
//!    invalid updates (unknown id, empty vertex set) rejected without
//!    poisoning the batch.
//! 3. **WAL** — the formed batch is appended to a durable write-ahead log
//!    ([`pbdmm_graph::wal`], same line-based conventions as `graph::io`)
//!    *before* it is applied, so a crash never loses an acknowledged batch.
//! 4. **Apply** — one [`BatchDynamic::apply`] call on a pinned
//!    [`ParPool`], settling the whole batch in one leveled round.
//! 5. **Complete** — each submitter's ticket resolves with its slice of the
//!    [`BatchOutcome`] (its assigned [`EdgeId`] for inserts), plus the
//!    update's position in the global apply order.
//!
//! The **read path** rides on epoch snapshots: start the service with
//! [`ServiceBuilder::start_serving`] and any number of reader threads
//! resolve `is_matched` / `partner` / `stats` queries through a cloneable
//! [`QueryHandle`] against the latest snapshot the structure published —
//! never blocking the coalescer. Every [`Completion`] carries the epoch at
//! which its batch became visible, published *before* the ticket resolves,
//! so completed writes are always readable (read-your-writes), and every
//! observed snapshot equals a sequential replay prefix of the WAL at its
//! epoch (the property `tests/snapshots.rs` checks).
//!
//! [`replay`] reconstructs a structure from a recorded WAL
//! deterministically — crash recovery and a trace-replay harness for
//! benchmarking real update streams in one mechanism.
//!
//! ```
//! use pbdmm_matching::DynamicMatching;
//! use pbdmm_service::{Done, ServiceConfig};
//!
//! let svc = ServiceConfig::builder()
//!     .start(DynamicMatching::with_seed(42))
//!     .unwrap();
//!
//! // Producers: clone the handle freely across threads.
//! let h = svc.handle();
//! let ticket = h.insert(vec![0, 1]);
//! let id = match ticket.wait().unwrap().done {
//!     Done::Inserted(id) => id,
//!     _ => unreachable!(),
//! };
//! h.delete(id).wait().unwrap();
//!
//! drop(h);
//! let (structure, stats) = svc.shutdown();
//! assert_eq!(structure.num_edges(), 0);
//! assert_eq!(stats.updates, 2);
//! ```
//!
//! [`Update`]: pbdmm_graph::update::Update
//! [`EdgeId`]: pbdmm_graph::edge::EdgeId
//! [`BatchDynamic::apply`]: pbdmm_matching::api::BatchDynamic::apply
//! [`BatchOutcome`]: pbdmm_matching::api::BatchOutcome
//! [`ParPool`]: pbdmm_primitives::pool::ParPool

#![warn(missing_docs)]

pub mod coalesce;
pub mod replay;
pub mod service;
pub mod shard;

pub use coalesce::{
    edge_shards, plan_batch, plan_sharded, shard_of_vertex, BatchPlan, CoalescePolicy, EdgeShards,
    ShardRoute, ShardedPlan, Slot, Stub, MAX_SHARDS,
};
pub use replay::{
    detect_shards, merged_wal, recover_dir_with, recover_matching_from_dir,
    recover_sharded_matching, replay_into, replay_matching, replay_setcover, shard_dir, Recovery,
    RecoveryInfo, ReplayReport, ShardedRecovery,
};
pub use service::{
    Completion, Done, QueryHandle, ServiceBuilder, ServiceConfig, ServiceError, ServiceHandle,
    ServiceStats, ServingRecovery, Ticket, UpdateService, WalConfig,
};
pub use shard::{ShardedQuery, ShardedService, ShardedStats, ShardedView};
