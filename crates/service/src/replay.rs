//! Deterministic WAL replay: rebuild a structure from a recorded log.
//!
//! Replay doubles as crash recovery (reconstruct the pre-crash state from
//! the committed prefix) and as a trace-replay harness (drive any
//! [`BatchDynamic`] with a real recorded update stream, e.g. for
//! benchmarking).
//!
//! Determinism argument: the WAL records committed batches in apply order;
//! insertions carry no ids because the structure assigns them sequentially
//! at apply time, so applying the identical batch sequence to a **fresh**
//! structure built with the **same seed** reassigns the identical ids and —
//! since the structure's coins are a function of its seed alone — reproduces
//! the exact final state, matching included.

use std::path::{Path, PathBuf};

use pbdmm_graph::update::Update;
use pbdmm_graph::wal::{read_wal_file, Wal, WalMeta};
use pbdmm_matching::api::BatchDynamic;
use pbdmm_matching::checkpoint::Checkpoint;
use pbdmm_matching::DynamicMatching;
use pbdmm_setcover::DynamicSetCover;

use crate::coalesce::{plan_batch, Slot};

/// What one replay did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Committed WAL batches consumed.
    pub batches: u64,
    /// `apply` calls issued (≥ `batches`: a batch whose deletes
    /// forward-reference its own inserts is split in two).
    pub applies: u64,
    /// Updates applied.
    pub updates: u64,
    /// Deletes deferred past their batch's inserts (see module docs).
    pub deferred: u64,
}

/// Replay a decoded WAL into `s`, which must be **fresh** (no edges ever
/// inserted — id assignment starts at 0) and seeded per the WAL metadata
/// for exact reproduction.
///
/// Batches are re-planned through the coalescer's conflict rules before
/// applying, so a trace whose batch deletes an edge inserted by the same
/// batch (possible in merged or hand-written WALs — a live recorder never
/// emits it) is split: inserts first, the forward-referencing deletes in a
/// follow-up batch. That forward-reference classification predicts ids
/// monotonically; a structure with deleted-id recycling replays any
/// *recorded* log exactly (recycling is deterministic in apply order, and a
/// live recorder only logs deletes of ids that are live at apply time), but
/// hand-written forward-referencing traces are only supported for the
/// default monotonic id assignment.
pub fn replay_into<S: BatchDynamic>(s: &mut S, wal: &Wal) -> Result<ReplayReport, String> {
    if s.num_edges() != 0 {
        return Err("replay target must be a fresh structure".into());
    }
    let mut report = ReplayReport::default();
    // Ids are assigned sequentially from 0 in apply order; this counter
    // predicts them, which is what lets the planner distinguish "created by
    // this batch's inserts" from "plain unknown id". The prediction is
    // verified on the first insert-bearing apply below: a fresh structure
    // assigns 0, 1, 2, … there in either id mode, while one that is empty
    // but has handed out ids before would silently shift every recorded
    // delete onto the wrong edge. (Later applies are not checked — a
    // recycling structure legitimately reuses freed ids from then on.)
    let mut next_insert_id: u64 = 0;
    let mut freshness_verified = false;
    for (seq, batch) in wal.batches.iter().enumerate() {
        let plan = plan_batch(
            batch.as_slice().to_vec(),
            |id| s.contains_edge(id),
            |id| id.raw() >= next_insert_id,
        );
        for slot in &plan.slots {
            match slot {
                Slot::RejectUnknown(id) => {
                    return Err(format!("batch {seq}: delete of unknown edge {id}"));
                }
                Slot::RejectEmpty => {
                    return Err(format!("batch {seq}: insert with empty vertex set"));
                }
                _ => {}
            }
        }
        let inserts = plan.batch.num_inserts() as u64;
        if !plan.batch.is_empty() {
            report.updates += plan.batch.len() as u64;
            report.applies += 1;
            let out = s
                .apply(plan.batch)
                .map_err(|e| format!("batch {seq}: {e}"))?;
            if !freshness_verified && !out.inserted.is_empty() {
                for (k, id) in out.inserted.iter().enumerate() {
                    if id.raw() != k as u64 {
                        return Err(format!(
                            "replay target is not fresh: expected insert id e{k}, \
                             structure assigned {id} (its id counter is not at 0); \
                             the target state is now unspecified"
                        ));
                    }
                }
                freshness_verified = true;
            }
        }
        next_insert_id += inserts;
        if !plan.deferred.is_empty() {
            // Forward-referencing deletes: their targets exist now. The
            // follow-up goes through the planner again so duplicates among
            // the deferred deletes coalesce instead of failing strict
            // `apply` (merged traces can carry them).
            let follow_ops: Vec<Update> = plan
                .deferred
                .iter()
                .map(|&i| batch.as_slice()[i].clone())
                .collect();
            let follow = plan_batch(follow_ops, |id| s.contains_edge(id), |_| false);
            for slot in &follow.slots {
                if let Slot::RejectUnknown(id) = slot {
                    return Err(format!("batch {seq}: delete of unknown edge {id}"));
                }
            }
            if !follow.batch.is_empty() {
                report.deferred += follow.batch.len() as u64;
                report.updates += follow.batch.len() as u64;
                report.applies += 1;
                s.apply(follow.batch)
                    .map_err(|e| format!("batch {seq} (deferred deletes): {e}"))?;
            }
        }
        report.batches += 1;
    }
    Ok(report)
}

/// Replay a WAL recorded over a [`DynamicMatching`]: builds a fresh
/// structure with the WAL's seed and replays every committed batch.
pub fn replay_matching(wal: &Wal) -> Result<(DynamicMatching, ReplayReport), String> {
    let mut m = DynamicMatching::with_seed(wal.meta.seed);
    let report = replay_into(&mut m, wal)?;
    Ok((m, report))
}

/// Replay a WAL recorded over a [`DynamicSetCover`] (element updates).
pub fn replay_setcover(wal: &Wal) -> Result<(DynamicSetCover, ReplayReport), String> {
    let mut c = DynamicSetCover::with_seed(wal.meta.seed);
    let report = replay_into(&mut c, wal)?;
    Ok((c, report))
}

// ---------------------------------------------------------------------------
// Segment-directory recovery
// ---------------------------------------------------------------------------

/// Path of the segment whose first batch has global sequence `seq`.
pub(crate) fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{seq:06}.seg"))
}

/// Path of the checkpoint capturing the state after `seq` batches.
pub(crate) fn ckpt_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{seq:06}.ckpt"))
}

/// The recognized files of a WAL segment directory, each sorted ascending
/// by sequence number. Unrecognized names (including in-flight
/// `*.ckpt.tmp` files) are ignored.
pub(crate) struct WalDirContents {
    /// `(first batch seq, path)` per `NNNNNN.seg`.
    pub segments: Vec<(u64, PathBuf)>,
    /// `(batches covered, path)` per `NNNNNN.ckpt`.
    pub checkpoints: Vec<(u64, PathBuf)>,
}

/// Scan a WAL directory for segments and checkpoints.
pub(crate) fn list_wal_dir(dir: &Path) -> Result<WalDirContents, String> {
    let mut segments = Vec::new();
    let mut checkpoints = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("read WAL dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read WAL dir {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let parse = |stem: &str| stem.parse::<u64>().ok();
        if let Some(stem) = name.strip_suffix(".seg") {
            if let Some(seq) = parse(stem) {
                segments.push((seq, entry.path()));
            }
        } else if let Some(stem) = name.strip_suffix(".ckpt") {
            if let Some(seq) = parse(stem) {
                checkpoints.push((seq, entry.path()));
            }
        }
    }
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    checkpoints.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(WalDirContents {
        segments,
        checkpoints,
    })
}

/// Outcome of [`recover_dir_with`]: the reconstructed structure plus what
/// recovery actually did (which checkpoint it loaded, how much log it
/// replayed).
pub struct Recovery<S> {
    /// The reconstructed structure, ready to serve or resume appending.
    pub structure: S,
    /// Sequence of the checkpoint recovery started from (= batches already
    /// baked into it), or `None` when it replayed from genesis.
    pub checkpoint: Option<u64>,
    /// Total committed batches reconstructed — the sequence the next
    /// appended batch gets, and the resume point for a new segment.
    pub next_seq: u64,
    /// Segments whose batches were replayed (not counting segments
    /// skipped because a checkpoint already covered them).
    pub segments_replayed: u64,
    /// Merged replay report over the replayed tail.
    pub report: ReplayReport,
    /// Metadata shared by every segment (validated for agreement).
    pub meta: WalMeta,
    /// Whether the final segment ended in a torn append (dropped, exactly
    /// like single-file replay).
    pub truncated: bool,
}

/// The structure-free summary of a [`Recovery`] — what the service builder
/// hands back after recovery, once the structure itself has been moved
/// into the running service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Checkpoint recovery started from, or `None` for genesis replay.
    pub checkpoint: Option<u64>,
    /// Total committed batches reconstructed.
    pub batches: u64,
    /// Segments replayed past the checkpoint.
    pub segments_replayed: u64,
    /// Merged replay report over the replayed tail.
    pub report: ReplayReport,
    /// Whether a torn final append was dropped.
    pub truncated: bool,
}

impl<S> Recovery<S> {
    /// The structure-free summary of this recovery.
    pub fn info(&self) -> RecoveryInfo {
        RecoveryInfo {
            checkpoint: self.checkpoint,
            batches: self.next_seq,
            segments_replayed: self.segments_replayed,
            report: self.report,
            truncated: self.truncated,
        }
    }
}

/// Replay one already-decoded tail segment into a **non-fresh** structure.
///
/// Unlike [`replay_into`], the target carries prior state (a restored
/// checkpoint plus earlier segments), so insert ids cannot be predicted
/// here — and need not be: a live recorder only logs deletes of ids that
/// were live when the batch applied, so a recorded segment never
/// forward-references its own inserts. Any planner rejection is therefore
/// log corruption, not a replayable quirk.
fn replay_tail_into<S: BatchDynamic>(
    s: &mut S,
    wal: &Wal,
    report: &mut ReplayReport,
) -> Result<(), String> {
    for (i, batch) in wal.batches.iter().enumerate() {
        let seq = wal.base + i as u64;
        let plan = plan_batch(
            batch.as_slice().to_vec(),
            |id| s.contains_edge(id),
            |_| false,
        );
        for slot in &plan.slots {
            match slot {
                Slot::RejectUnknown(id) => {
                    return Err(format!("batch {seq}: delete of unknown edge {id}"));
                }
                Slot::RejectEmpty => {
                    return Err(format!("batch {seq}: insert with empty vertex set"));
                }
                _ => {}
            }
        }
        debug_assert!(plan.deferred.is_empty(), "recorded logs never defer");
        if !plan.batch.is_empty() {
            report.updates += plan.batch.len() as u64;
            report.applies += 1;
            s.apply(plan.batch)
                .map_err(|e| format!("batch {seq}: {e}"))?;
        }
        report.batches += 1;
    }
    Ok(())
}

/// Replay the contiguous run of segments starting at sequence `start` into
/// `s`, validating filename/header agreement and segment contiguity.
/// Returns `(next_seq, segments_replayed, truncated)`.
fn replay_segments_from<S: BatchDynamic>(
    s: &mut S,
    segments: &[(u64, PathBuf)],
    start: u64,
    meta: &WalMeta,
    report: &mut ReplayReport,
) -> Result<(u64, u64, bool), String> {
    let first = segments
        .iter()
        .position(|&(base, _)| base == start)
        .ok_or_else(|| {
            format!("no segment starts at batch {start} (history compacted away or missing)")
        })?;
    let tail = &segments[first..];
    let mut expected = start;
    let mut replayed = 0u64;
    let mut truncated = false;
    for (i, (base, path)) in tail.iter().enumerate() {
        let is_last = i + 1 == tail.len();
        if *base != expected {
            return Err(format!(
                "gap in WAL segments: {} starts at batch {base}, expected {expected}",
                path.display()
            ));
        }
        let wal = match read_wal_file(path) {
            Ok(wal) => wal,
            // An unreadable *final* segment is a torn rotation (crash while
            // the new segment file was being created): nothing committed can
            // live in it, so recovery keeps the prefix instead of erroring.
            Err(_) if is_last => {
                truncated = true;
                break;
            }
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        if wal.base != *base || wal.meta != *meta {
            // Same torn-rotation tolerance: a final segment whose header
            // was cut mid-write parses with default/partial metadata. It is
            // only forgivable when it carries no committed batches — the
            // writer appends strictly after a clean header.
            if is_last && wal.batches.is_empty() {
                truncated = true;
                break;
            }
            if wal.base != *base {
                return Err(format!(
                    "{}: header says base {}, filename says {base}",
                    path.display(),
                    wal.base
                ));
            }
            return Err(format!(
                "{}: segment metadata disagrees with the rest of the log",
                path.display()
            ));
        }
        replay_tail_into(s, &wal, report)?;
        expected += wal.batches.len() as u64;
        replayed += 1;
        if wal.truncated {
            // A torn append is tolerable only at the very end of the log:
            // the writer rotates strictly after a clean append+apply, so a
            // mid-chain segment that reads as torn is corruption — unless
            // the next segment picks up exactly where the readable prefix
            // ends (then the "torn" bytes were a rolled-back batch).
            match tail.get(i + 1) {
                None => truncated = true,
                Some((next_base, next_path)) if *next_base != expected => {
                    return Err(format!(
                        "{}: torn mid-log segment ({} committed batches, next \
                         segment {} starts at {next_base})",
                        path.display(),
                        expected,
                        next_path.display()
                    ));
                }
                Some(_) => {}
            }
        }
    }
    Ok((expected, replayed, truncated))
}

/// Recover a structure from a WAL segment directory: load the newest
/// readable checkpoint, then replay only the segments past it.
///
/// `make` builds a fresh structure (correct seed and id mode) each time a
/// starting point is tried: checkpoints are attempted newest to oldest, a
/// torn or unreadable one falls back to the next older, and when none is
/// usable (or `from_genesis` is set, or the structure reports
/// [`Checkpoint::checkpoint_supported`] false) the whole log replays from
/// segment 0. Recovery therefore never errors on a torn checkpoint — only
/// on genuine log corruption or compacted-away history it cannot bridge.
pub fn recover_dir_with<S, F>(
    dir: &Path,
    mut make: F,
    from_genesis: bool,
) -> Result<Recovery<S>, String>
where
    S: BatchDynamic + Checkpoint,
    F: FnMut() -> S,
{
    let contents = list_wal_dir(dir)?;
    if contents.segments.is_empty() {
        return Err(format!("WAL dir {} contains no segments", dir.display()));
    }
    // Metadata is identical across segments (validated during replay);
    // read it once from the oldest.
    let (_, oldest) = &contents.segments[0];
    let meta = read_wal_file(oldest)
        .map_err(|e| format!("{}: {e}", oldest.display()))?
        .meta;
    let use_ckpts = !from_genesis && make().checkpoint_supported();
    if use_ckpts {
        for (seq, path) in contents.checkpoints.iter().rev() {
            let mut s = make();
            let loaded = std::fs::File::open(path)
                .map_err(|e| e.to_string())
                .and_then(|f| s.read_checkpoint(&mut std::io::BufReader::new(f)));
            if loaded.is_err() {
                // Torn or unreadable checkpoint (e.g. crash mid-rename on a
                // filesystem without atomic rename): fall back one.
                continue;
            }
            let mut report = ReplayReport::default();
            match replay_segments_from(&mut s, &contents.segments, *seq, &meta, &mut report) {
                Ok((next_seq, segments_replayed, truncated)) => {
                    return Ok(Recovery {
                        structure: s,
                        checkpoint: Some(*seq),
                        next_seq,
                        segments_replayed,
                        report,
                        meta,
                        truncated,
                    });
                }
                // The segment run starting at this checkpoint is unusable
                // (e.g. its segment was lost); an older checkpoint starts
                // further back and may bridge the gap.
                Err(_) => continue,
            }
        }
    }
    // Genesis: the full history must still be on disk.
    let mut s = make();
    let mut report = ReplayReport::default();
    let (next_seq, segments_replayed, truncated) =
        replay_segments_from(&mut s, &contents.segments, 0, &meta, &mut report)?;
    Ok(Recovery {
        structure: s,
        checkpoint: None,
        next_seq,
        segments_replayed,
        report,
        meta,
        truncated,
    })
}

/// Recover a [`DynamicMatching`] from a WAL segment directory, deriving
/// seed and id mode from the segment metadata. See [`recover_dir_with`].
pub fn recover_matching_from_dir(
    dir: &Path,
    from_genesis: bool,
) -> Result<Recovery<DynamicMatching>, String> {
    let contents = list_wal_dir(dir)?;
    let (_, oldest) = contents
        .segments
        .first()
        .ok_or_else(|| format!("WAL dir {} contains no segments", dir.display()))?;
    let meta = read_wal_file(oldest)
        .map_err(|e| format!("{}: {e}", oldest.display()))?
        .meta;
    if meta.structure != "matching" {
        return Err(format!(
            "WAL records structure {:?}, not a matching",
            meta.structure
        ));
    }
    let seed = meta.seed;
    let recycling = meta.ids_recycling;
    recover_dir_with(
        dir,
        move || {
            let mut m = DynamicMatching::with_seed(seed);
            if recycling {
                m.set_recycle_ids(true);
            }
            m
        },
        from_genesis,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbdmm_graph::edge::EdgeId;
    use pbdmm_graph::update::Batch;
    use pbdmm_graph::wal::WalMeta;
    use pbdmm_matching::verify::check_invariants;

    fn wal_of(batches: Vec<Batch>) -> Wal {
        Wal {
            meta: WalMeta {
                structure: "matching".into(),
                seed: 11,
                ids_recycling: false,
            },
            base: 0,
            batches,
            truncated: false,
        }
    }

    #[test]
    fn replays_to_identical_state() {
        let batches = vec![
            Batch::new().inserts([vec![0, 1], vec![1, 2], vec![2, 3]]),
            Batch::new().delete(EdgeId(1)).insert(vec![3, 4]),
            Batch::new().deletes([EdgeId(0), EdgeId(3)]),
        ];
        // Reference: drive a structure directly with the same batches.
        let mut reference = DynamicMatching::with_seed(11);
        for b in &batches {
            reference.apply(b.clone()).unwrap();
        }
        let (replayed, report) = replay_matching(&wal_of(batches)).unwrap();
        assert_eq!(report.batches, 3);
        assert_eq!(report.updates, 7);
        assert_eq!(report.deferred, 0);
        let mut a = reference.matching();
        let mut b = replayed.matching();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "matching state must reproduce exactly");
        assert_eq!(reference.num_edges(), replayed.num_edges());
        check_invariants(&replayed).unwrap();
    }

    #[test]
    fn rejects_emptied_but_used_targets() {
        // An emptied structure still fails freshness: its id counter is not
        // at 0, so recorded deletes would land on the wrong edges. Detected
        // on the first apply, before any recorded delete can resolve.
        let mut used = DynamicMatching::with_seed(11);
        let ids = used.insert_edges(&[vec![0, 1]]);
        used.delete_edges(&ids);
        assert_eq!(used.num_edges(), 0);
        let err =
            replay_into(&mut used, &wal_of(vec![Batch::new().insert(vec![2, 3])])).unwrap_err();
        assert!(err.contains("not fresh"), "{err}");
    }

    #[test]
    fn deferred_duplicate_deletes_coalesce() {
        // `i 0 1; d 0; d 0`: both deletes forward-reference the batch's own
        // insert and defer; the follow-up batch must deduplicate them
        // instead of failing strict apply.
        let batches = vec![Batch::new()
            .insert(vec![0, 1])
            .delete(EdgeId(0))
            .delete(EdgeId(0))];
        let (m, report) = replay_matching(&wal_of(batches)).unwrap();
        assert_eq!(m.num_edges(), 0);
        assert_eq!(report.deferred, 1);
        assert_eq!(report.applies, 2);
        check_invariants(&m).unwrap();
    }

    #[test]
    fn defers_forward_referencing_deletes() {
        // One hand-written batch inserting two edges and deleting the first
        // of them (id 0 is assigned by this very batch): the replayer must
        // split it rather than reject it.
        let batches = vec![Batch::new()
            .insert(vec![0, 1])
            .delete(EdgeId(0))
            .insert(vec![2, 3])];
        let (m, report) = replay_matching(&wal_of(batches)).unwrap();
        assert_eq!(report.deferred, 1);
        assert_eq!(report.applies, 2);
        assert_eq!(m.num_edges(), 1);
        assert!(m.contains_edge(EdgeId(1)));
        check_invariants(&m).unwrap();
    }

    #[test]
    fn rejects_unknown_ids_and_stale_targets() {
        let err = replay_matching(&wal_of(vec![Batch::new().delete(EdgeId(5))])).unwrap_err();
        assert!(err.contains("unknown"), "{err}");
        // A forward reference beyond the batch's own inserts is unknown too.
        let err = replay_matching(&wal_of(vec![Batch::new()
            .insert(vec![0, 1])
            .delete(EdgeId(7))]))
        .unwrap_err();
        assert!(err.contains("unknown"), "{err}");
        // Fresh-structure precondition.
        let mut used = DynamicMatching::with_seed(1);
        used.insert_edges(&[vec![0, 1]]);
        let err = replay_into(&mut used, &wal_of(vec![])).unwrap_err();
        assert!(err.contains("fresh"), "{err}");
    }

    #[test]
    fn replays_setcover_elements() {
        let batches = vec![
            Batch::new().inserts([vec![0, 1], vec![1, 2], vec![2]]),
            Batch::new().delete(EdgeId(0)),
        ];
        let wal = Wal {
            meta: WalMeta {
                structure: "setcover".into(),
                seed: 3,
                ids_recycling: false,
            },
            base: 0,
            batches,
            truncated: false,
        };
        let (c, report) = replay_setcover(&wal).unwrap();
        assert_eq!(report.batches, 2);
        assert_eq!(c.num_elements(), 2);
        assert!(c.cover_size() > 0);
        check_invariants(c.matching()).unwrap();
    }
}
