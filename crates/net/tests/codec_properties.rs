//! Randomized property tests over the wire codec, mirroring the WAL
//! torn-write tests in style and seeding: arbitrary frames of every type
//! must round-trip exactly, and no torn, truncated, oversized, or
//! bit-flipped input may ever panic the decoder — hostile bytes yield a
//! structured [`FrameError`], nothing else. Cases are generated from fixed
//! seeds (deterministic, reproducible).

use pbdmm_graph::{EdgeId, Update};
use pbdmm_net::proto::{
    self, ErrorCode, FrameError, Request, Response, UpdateResult, WireDelta, WireStats, MAX_FRAME,
};
use pbdmm_primitives::rng::SplitMix64;

/// Cases per property: 64 by default; the nightly CI job raises it via
/// `PBDMM_PROP_CASES` for deeper sweeps at the same fixed seeds.
fn cases() -> u64 {
    std::env::var("PBDMM_PROP_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

fn arb_update(rng: &mut SplitMix64) -> Update {
    if rng.bounded(3) == 0 {
        Update::Delete(EdgeId(rng.next_u64() >> 8))
    } else {
        let card = 1 + rng.bounded(4) as usize;
        Update::Insert((0..card).map(|_| rng.bounded(1 << 20) as u32).collect())
    }
}

fn arb_request(rng: &mut SplitMix64) -> Request {
    let req_id = rng.next_u64();
    match rng.bounded(6) {
        0 => Request::SubmitBatch {
            req_id,
            updates: (0..rng.bounded(20)).map(|_| arb_update(rng)).collect(),
        },
        1 => Request::PointQuery {
            req_id,
            vertex: rng.next_u64() as u32,
        },
        2 => Request::Stats { req_id },
        3 => Request::SubscribeEpoch {
            req_id,
            from_epoch: rng.next_u64(),
        },
        4 => Request::SubscribeDeltas {
            req_id,
            from_epoch: rng.next_u64(),
        },
        _ => Request::Shutdown { req_id },
    }
}

fn arb_delta(rng: &mut SplitMix64) -> WireDelta {
    let ids = |rng: &mut SplitMix64, n: u64| -> Vec<u64> {
        (0..rng.bounded(n)).map(|_| rng.next_u64() >> 8).collect()
    };
    WireDelta {
        from_epoch: rng.next_u64(),
        to_epoch: rng.next_u64(),
        inserted: ids(rng, 10),
        deleted: ids(rng, 10),
        matched: (0..rng.bounded(8))
            .map(|_| {
                let card = 1 + rng.bounded(4) as usize;
                (
                    rng.next_u64() >> 8,
                    (0..card).map(|_| rng.next_u64() as u32).collect(),
                )
            })
            .collect(),
        unmatched: ids(rng, 10),
    }
}

fn arb_code(rng: &mut SplitMix64) -> ErrorCode {
    ErrorCode::from_u16(1 + rng.bounded(7) as u16).unwrap()
}

fn arb_result(rng: &mut SplitMix64) -> UpdateResult {
    let (id, seq, epoch) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
    match rng.bounded(4) {
        0 => UpdateResult::Inserted { id, seq, epoch },
        1 => UpdateResult::Deleted { id, seq, epoch },
        2 => UpdateResult::AlreadyDeleted { id, seq, epoch },
        _ => UpdateResult::Rejected {
            code: arb_code(rng),
        },
    }
}

fn arb_response(rng: &mut SplitMix64) -> Response {
    let req_id = rng.next_u64();
    match rng.bounded(6) {
        0 => Response::Completion {
            req_id,
            epoch: rng.next_u64(),
            results: (0..rng.bounded(20)).map(|_| arb_result(rng)).collect(),
        },
        1 => Response::QueryResult {
            req_id,
            epoch: rng.next_u64(),
            matched_edge: (rng.bounded(2) == 0).then(|| rng.next_u64()),
            partners: (0..rng.bounded(5)).map(|_| rng.next_u64() as u32).collect(),
        },
        2 => Response::Stats {
            req_id,
            stats: WireStats {
                epoch: rng.next_u64(),
                num_edges: rng.next_u64(),
                matching_size: rng.next_u64(),
                connections: rng.next_u64() as u32,
                total_connections: rng.next_u64(),
                overloaded: rng.next_u64(),
                protocol_errors: rng.next_u64(),
                draining: rng.bounded(2) as u8,
            },
        },
        3 => Response::EpochEvent {
            epoch: rng.next_u64(),
        },
        4 => Response::DeltaEvent {
            resync: rng.bounded(2) == 0,
            delta: arb_delta(rng),
        },
        _ => Response::Error {
            req_id,
            code: arb_code(rng),
            message: {
                let len = rng.bounded(40) as usize;
                (0..len)
                    .map(|_| char::from(b'a' + rng.bounded(26) as u8))
                    .collect()
            },
        },
    }
}

#[test]
fn requests_round_trip_over_all_frame_types() {
    let mut rng = SplitMix64::new(0xC0DE_C001);
    for _ in 0..cases() {
        let req = arb_request(&mut rng);
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, &req.encode()).unwrap();
        let mut body = Vec::new();
        let mut r = &wire[..];
        assert!(proto::read_frame(&mut r, MAX_FRAME, &mut body)
            .unwrap()
            .is_some());
        assert_eq!(Request::decode(&body).unwrap(), req);
        assert!(r.is_empty(), "frame left trailing bytes on the stream");
    }
}

#[test]
fn responses_round_trip_over_all_frame_types() {
    let mut rng = SplitMix64::new(0xC0DE_C002);
    for _ in 0..cases() {
        let resp = arb_response(&mut rng);
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, &resp.encode()).unwrap();
        let mut body = Vec::new();
        let mut r = &wire[..];
        assert!(proto::read_frame(&mut r, MAX_FRAME, &mut body)
            .unwrap()
            .is_some());
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }
}

#[test]
fn pipelined_frame_streams_round_trip() {
    // Many frames back to back on one stream — the decoder must consume
    // each frame exactly and stop cleanly at the boundary EOF.
    let mut rng = SplitMix64::new(0xC0DE_C003);
    for _ in 0..cases() {
        let reqs: Vec<Request> = (0..1 + rng.bounded(10))
            .map(|_| arb_request(&mut rng))
            .collect();
        let mut wire = Vec::new();
        for req in &reqs {
            proto::write_frame(&mut wire, &req.encode()).unwrap();
        }
        let mut r = &wire[..];
        let mut body = Vec::new();
        let mut decoded = Vec::new();
        while proto::read_frame(&mut r, MAX_FRAME, &mut body)
            .unwrap()
            .is_some()
        {
            decoded.push(Request::decode(&body).unwrap());
        }
        assert_eq!(decoded, reqs);
    }
}

/// Mid-frame disconnects: every prefix of a valid frame stream must decode
/// the complete frames, then report `Torn` — never a panic, and never a
/// phantom frame. (A cut at a frame boundary is a clean EOF instead.)
#[test]
fn every_truncation_is_torn_or_a_clean_boundary() {
    let mut rng = SplitMix64::new(0xC0DE_C004);
    for _ in 0..cases() {
        let mut wire = Vec::new();
        let mut boundaries = vec![0usize];
        for _ in 0..1 + rng.bounded(4) {
            proto::write_frame(&mut wire, &arb_request(&mut rng).encode()).unwrap();
            boundaries.push(wire.len());
        }
        let cut = rng.bounded(wire.len() as u64 + 1) as usize;
        let mut r = &wire[..cut];
        let mut body = Vec::new();
        let result = loop {
            match proto::read_frame(&mut r, MAX_FRAME, &mut body) {
                Ok(Some(())) => {
                    Request::decode(&body).unwrap(); // complete frames stay valid
                }
                other => break other,
            }
        };
        if boundaries.contains(&cut) {
            assert!(matches!(result, Ok(None)), "cut {cut} is a boundary");
        } else {
            assert!(
                matches!(result, Err(FrameError::Torn { .. })),
                "cut {cut}: got {result:?}"
            );
        }
    }
}

/// Torn length prefixes specifically: 1–3 bytes of a 4-byte prefix.
#[test]
fn truncated_length_prefix_is_torn() {
    let mut wire = Vec::new();
    proto::write_frame(&mut wire, &Request::Stats { req_id: 9 }.encode()).unwrap();
    let mut body = Vec::new();
    for cut in 1..4 {
        let mut r = &wire[..cut];
        assert!(matches!(
            proto::read_frame(&mut r, MAX_FRAME, &mut body),
            Err(FrameError::Torn { .. })
        ));
    }
}

/// A declared length beyond the cap is refused before buffering a byte,
/// whatever follows the prefix.
#[test]
fn lengths_beyond_the_cap_are_rejected_unbuffered() {
    let mut rng = SplitMix64::new(0xC0DE_C005);
    for _ in 0..cases() {
        let len = MAX_FRAME as u64 + 1 + rng.bounded(u32::MAX as u64 - MAX_FRAME as u64);
        let wire = (len as u32).to_le_bytes();
        let mut body = Vec::new();
        assert!(matches!(
            proto::read_frame(&mut &wire[..], MAX_FRAME, &mut body),
            Err(FrameError::TooLarge { .. })
        ));
    }
}

/// Bit-flip fuzzing: corrupt one byte of a valid frame body anywhere and
/// decoding must return `Ok` (the flip hit a don't-care bit or produced a
/// different valid frame) or `Malformed` — never panic, never overread.
#[test]
fn bit_flipped_bodies_never_panic_the_decoder() {
    let mut rng = SplitMix64::new(0xC0DE_C006);
    for _ in 0..cases() {
        let mut body = arb_request(&mut rng).encode();
        let pos = rng.bounded(body.len() as u64) as usize;
        body[pos] ^= 1 << rng.bounded(8);
        let _ = Request::decode(&body); // must not panic
        let _ = Response::decode(&body); // wrong opcode space: same rule
    }
}

/// Random garbage bodies: pure noise must decode to an error, not a panic.
#[test]
fn random_garbage_never_panics_the_decoder() {
    let mut rng = SplitMix64::new(0xC0DE_C007);
    for _ in 0..cases() {
        let len = 1 + rng.bounded(256) as usize;
        let body: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = Request::decode(&body);
        let _ = Response::decode(&body);
    }
}

/// Truncated bodies of valid frames: every strict prefix must be rejected
/// as malformed (missing bytes), never accepted or panicked on.
#[test]
fn truncated_bodies_are_malformed() {
    let mut rng = SplitMix64::new(0xC0DE_C008);
    for _ in 0..cases() {
        let req = arb_request(&mut rng);
        let body = req.encode();
        for cut in 0..body.len() {
            assert!(
                matches!(Request::decode(&body[..cut]), Err(FrameError::Malformed(_))),
                "prefix of {cut} bytes accepted"
            );
        }
    }
}
