//! A static hypergraph container with CSR adjacency.
//!
//! Used as the input type for static maximal matching (Lemma 1.3) and as the
//! edge universe for workload streams. Terminology follows §2: rank is the
//! maximum edge cardinality, `m'` ("total cardinality") is the sum of edge
//! cardinalities.

use pbdmm_primitives::par::par_map;

use crate::edge::{EdgeVertices, VertexId};

/// A static hypergraph: `n` vertices, edges given as canonical vertex lists.
#[derive(Debug, Clone, Default)]
pub struct Hypergraph {
    /// Number of vertices (ids are `0..n`).
    pub n: usize,
    /// Edges, each a sorted duplicate-free vertex list.
    pub edges: Vec<EdgeVertices>,
}

impl Hypergraph {
    /// Build from parts, validating edge canonical form and vertex bounds.
    pub fn new(n: usize, edges: Vec<EdgeVertices>) -> Result<Self, String> {
        for (i, e) in edges.iter().enumerate() {
            if e.is_empty() {
                return Err(format!("edge {i} is empty"));
            }
            if !e.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("edge {i} is not sorted/deduplicated: {e:?}"));
            }
            if *e.last().unwrap() as usize >= n {
                return Err(format!(
                    "edge {i} references vertex {} >= n={n}",
                    e.last().unwrap()
                ));
            }
        }
        Ok(Hypergraph { n, edges })
    }

    /// Number of edges (`m`).
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Total cardinality (`m'` in the paper): sum of `|e|`.
    pub fn total_cardinality(&self) -> usize {
        self.edges.iter().map(|e| e.len()).sum()
    }

    /// Rank: maximum edge cardinality (`r`).
    pub fn rank(&self) -> usize {
        self.edges.iter().map(|e| e.len()).max().unwrap_or(0)
    }

    /// Vertex→incident-edge adjacency in CSR form.
    pub fn adjacency(&self) -> Csr {
        Csr::from_edge_lists(self.n, &self.edges)
    }

    /// Per-vertex degrees (number of incident edges).
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n];
        for e in &self.edges {
            for &v in e {
                deg[v as usize] += 1;
            }
        }
        deg
    }

    /// Is `matching` (a set of edge indices) a valid matching?
    pub fn is_matching(&self, matching: &[usize]) -> bool {
        let mut covered = vec![false; self.n];
        for &ei in matching {
            for &v in &self.edges[ei] {
                if covered[v as usize] {
                    return false;
                }
                covered[v as usize] = true;
            }
        }
        true
    }

    /// Is `matching` maximal: every non-matched edge incident on a matched one?
    pub fn is_maximal_matching(&self, matching: &[usize]) -> bool {
        if !self.is_matching(matching) {
            return false;
        }
        let mut covered = vec![false; self.n];
        for &ei in matching {
            for &v in &self.edges[ei] {
                covered[v as usize] = true;
            }
        }
        let in_matching: std::collections::HashSet<usize> = matching.iter().copied().collect();
        let flags = par_map(&self.edges, |e| e.iter().any(|&v| covered[v as usize]));
        flags
            .iter()
            .enumerate()
            .all(|(ei, &touched)| touched || in_matching.contains(&ei))
    }
}

/// Compressed sparse rows: vertex `v`'s incident edge indices are
/// `incident[offsets[v] .. offsets[v+1]]`.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Row offsets, length `n + 1`.
    pub offsets: Vec<u32>,
    /// Concatenated incident edge indices.
    pub incident: Vec<u32>,
}

impl Csr {
    /// Build vertex→incident-edge adjacency over `n` vertices from edge
    /// vertex lists (each entry must be `< n`). This is the one CSR
    /// constructor in the workspace — [`Hypergraph::adjacency`] and the
    /// greedy matcher's compacted adjacency both go through it.
    ///
    /// One counting pass plus one fill pass over the edges; the single
    /// `n`-sized scratch array serves as degree counter, then (after an
    /// in-place exclusive scan) as the fill cursor, and finally — holding
    /// each row's end position — becomes the tail of `offsets`.
    pub fn from_edge_lists(n: usize, edges: &[EdgeVertices]) -> Csr {
        let mut cursor = vec![0u32; n];
        for e in edges {
            for &v in e {
                cursor[v as usize] += 1;
            }
        }
        let mut acc = 0u32;
        for c in cursor.iter_mut() {
            let d = *c;
            *c = acc;
            acc += d;
        }
        let mut incident = vec![0u32; acc as usize];
        for (ei, e) in edges.iter().enumerate() {
            for &v in e {
                incident[cursor[v as usize] as usize] = ei as u32;
                cursor[v as usize] += 1;
            }
        }
        // `cursor[v]` now holds the end of row `v`, i.e. `offsets[v + 1]`.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        offsets.extend_from_slice(&cursor);
        Csr { offsets, incident }
    }

    /// Number of rows (vertices).
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Incident edge indices of vertex `v`.
    #[inline]
    pub fn row(&self, v: VertexId) -> &[u32] {
        &self.incident[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Hypergraph {
        // Triangle 0-1, 1-2, 0-2.
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap()
    }

    #[test]
    fn counts() {
        let g = tri();
        assert_eq!(g.m(), 3);
        assert_eq!(g.total_cardinality(), 6);
        assert_eq!(g.rank(), 2);
    }

    #[test]
    fn rejects_malformed_edges() {
        assert!(Hypergraph::new(3, vec![vec![]]).is_err());
        assert!(Hypergraph::new(3, vec![vec![1, 0]]).is_err());
        assert!(Hypergraph::new(3, vec![vec![0, 0]]).is_err());
        assert!(Hypergraph::new(3, vec![vec![0, 3]]).is_err());
    }

    #[test]
    fn adjacency_rows() {
        let g = tri();
        let adj = g.adjacency();
        assert_eq!(adj.degree(0), 2);
        assert_eq!(adj.degree(1), 2);
        assert_eq!(adj.degree(2), 2);
        let mut r0 = adj.row(0).to_vec();
        r0.sort_unstable();
        assert_eq!(r0, vec![0, 2]);
    }

    #[test]
    fn csr_from_edge_lists_handles_isolated_vertices() {
        let csr = Csr::from_edge_lists(4, &[vec![0, 2], vec![2, 3]]);
        assert_eq!(csr.num_rows(), 4);
        assert_eq!(csr.degree(1), 0);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(0), &[0]);
        assert_eq!(csr.row(2), &[0, 1]);
        assert_eq!(csr.row(3), &[1]);
        assert_eq!(csr.offsets, vec![0, 1, 1, 3, 4]);
    }

    #[test]
    fn matching_predicates() {
        let g = tri();
        assert!(g.is_matching(&[0]));
        assert!(!g.is_matching(&[0, 1])); // share vertex 1
        assert!(g.is_maximal_matching(&[0])); // any single triangle edge is maximal
        assert!(!g.is_maximal_matching(&[])); // empty is not maximal here
    }

    #[test]
    fn hyperedge_matching() {
        let g = Hypergraph::new(6, vec![vec![0, 1, 2], vec![3, 4, 5], vec![2, 3]]).unwrap();
        assert!(g.is_matching(&[0, 1]));
        assert!(g.is_maximal_matching(&[0, 1]));
        // {2,3} alone is also maximal: it touches both rank-3 edges.
        assert!(g.is_maximal_matching(&[2]));
    }

    #[test]
    fn empty_graph_is_trivially_maximal() {
        let g = Hypergraph::new(0, vec![]).unwrap();
        assert!(g.is_maximal_matching(&[]));
    }
}
