//! Sharded maps: the "groupBy, then batch-update each set in parallel"
//! pattern (§2, "Parallel insertions, deletions and increments").
//!
//! The paper performs parallel-loop insertions/deletions on many small sets
//! by first gathering updates per target (a semisort) and then applying each
//! target's updates as a batch, targets in parallel. [`ShardedMap`] packages
//! that: keys are hashed to one of `2^k` shards, a batch of updates is
//! grouped by shard, and shards are processed in parallel — updates to
//! *different* shards never contend, and the per-shard mutex is uncontended
//! because each shard is owned by one task during a batch.

use std::hash::Hash;
use std::sync::Mutex;

use crate::cost::CostHint;
use crate::hash::{fx_hash, FxHashMap};
use crate::par::{par_consume, should_par_hint};

/// Per-update map mutation is Heavy: shard batches go parallel early.
const HINT: CostHint = CostHint::Heavy;

/// Number of shards. A power of two comfortably above any machine's core
/// count keeps per-shard batches balanced.
const SHARDS: usize = 64;

/// A hash map sharded for batch-parallel mutation.
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<FxHashMap<K, V>>>,
}

impl<K, V> ShardedMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync,
    V: Send + Sync,
{
    /// Create an empty sharded map.
    pub fn new() -> Self {
        ShardedMap {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    #[inline]
    fn shard_of(&self, key: &K) -> usize {
        (fx_hash(key) as usize) & (SHARDS - 1)
    }

    #[inline]
    fn lock(&self, s: usize) -> std::sync::MutexGuard<'_, FxHashMap<K, V>> {
        self.shards[s].lock().expect("shard mutex poisoned")
    }

    /// Insert a single entry; returns the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let s = self.shard_of(&key);
        self.lock(s).insert(key, value)
    }

    /// Remove a single entry.
    pub fn remove(&self, key: &K) -> Option<V> {
        let s = self.shard_of(key);
        self.lock(s).remove(key)
    }

    /// Clone-read a single value.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let s = self.shard_of(key);
        self.lock(s).get(key).cloned()
    }

    /// Apply `f` to the value under `key`, inserting `default()` first if
    /// absent. Returns `f`'s result.
    pub fn update_or_insert<R>(
        &self,
        key: K,
        default: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R {
        let s = self.shard_of(&key);
        let mut shard = self.lock(s);
        let slot = shard.entry(key).or_insert_with(default);
        f(slot)
    }

    /// Batch-apply keyed updates in parallel: updates are grouped by shard,
    /// then each shard applies its group under its own lock. `f` is invoked
    /// once per update with the map entry.
    pub fn batch_update<U>(
        &self,
        updates: Vec<(K, U)>,
        default: impl Fn() -> V + Sync,
        f: impl Fn(&mut V, U) + Sync,
    ) where
        U: Send + Sync,
    {
        if !should_par_hint(updates.len(), HINT) {
            for (k, u) in updates {
                let s = self.shard_of(&k);
                let mut shard = self.lock(s);
                let slot = shard.entry(k).or_insert_with(&default);
                f(slot, u);
            }
            return;
        }
        let mut by_shard: Vec<Vec<(K, U)>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for (k, u) in updates {
            let s = self.shard_of(&k);
            by_shard[s].push((k, u));
        }
        let tasks: Vec<(usize, Vec<(K, U)>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, group)| !group.is_empty())
            .collect();
        par_consume(tasks, |(s, group)| {
            let mut shard = self.lock(s);
            for (k, u) in group {
                let slot = shard.entry(k).or_insert_with(&default);
                f(slot, u);
            }
        });
    }

    /// Batch-remove keys in parallel (grouped by shard).
    pub fn batch_remove(&self, keys: Vec<K>) {
        if !should_par_hint(keys.len(), HINT) {
            for k in keys {
                self.remove(&k);
            }
            return;
        }
        let mut by_shard: Vec<Vec<K>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for k in keys {
            let s = self.shard_of(&k);
            by_shard[s].push(k);
        }
        let tasks: Vec<(usize, Vec<K>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, group)| !group.is_empty())
            .collect();
        par_consume(tasks, |(s, group)| {
            let mut shard = self.lock(s);
            for k in group {
                shard.remove(&k);
            }
        });
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        (0..SHARDS).map(|s| self.lock(s).len()).sum()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain all entries into a vector.
    pub fn drain_all(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for s in 0..SHARDS {
            out.extend(std::mem::take(&mut *self.lock(s)));
        }
        out
    }

    /// Snapshot all entries (requires `V: Clone`).
    pub fn entries(&self) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        for s in 0..SHARDS {
            out.extend(self.lock(s).iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }
}

impl<K, V> Default for ShardedMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync,
    V: Send + Sync,
{
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let m: ShardedMap<u32, String> = ShardedMap::new();
        assert!(m.insert(1, "a".into()).is_none());
        assert_eq!(m.get_cloned(&1), Some("a".into()));
        assert_eq!(m.insert(1, "b".into()), Some("a".into()));
        assert_eq!(m.remove(&1), Some("b".into()));
        assert!(m.is_empty());
    }

    #[test]
    fn batch_update_accumulates() {
        let m: ShardedMap<u32, Vec<u32>> = ShardedMap::new();
        let updates: Vec<(u32, u32)> = (0..50_000).map(|i| (i % 100, i)).collect();
        m.batch_update(updates, Vec::new, |v, u| v.push(u));
        assert_eq!(m.len(), 100);
        let total: usize = m.entries().iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 50_000);
    }

    #[test]
    fn batch_remove_removes() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        for i in 0..10_000 {
            m.insert(i, i);
        }
        m.batch_remove((0..9000).collect());
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get_cloned(&9500), Some(9500));
        assert_eq!(m.get_cloned(&500), None);
    }

    #[test]
    fn update_or_insert_inserts_then_updates() {
        let m: ShardedMap<u8, u64> = ShardedMap::new();
        m.update_or_insert(1, || 0, |v| *v += 10);
        m.update_or_insert(1, || 0, |v| *v += 5);
        assert_eq!(m.get_cloned(&1), Some(15));
    }

    #[test]
    fn drain_all_empties() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        let mut drained = m.drain_all();
        drained.sort();
        assert_eq!(drained.len(), 1000);
        assert!(m.is_empty());
        assert_eq!(drained[999], (999, 1998));
    }
}
