//! Shard-invariance property suite: the K-shard routing tier must be
//! **observationally invisible**. For fixed seeds and a deterministic
//! update script:
//!
//! * the final live-edge set, matching, `final:` summary line, and the
//!   deterministic service counters are byte-identical across K ∈ {1,2,4}
//!   (the CI matrix reruns this file under `PBDMM_THREADS={1,4}`, so the
//!   equality also holds across scheduler widths);
//! * every concurrently-observed cross-shard view is **consistent** (all K
//!   snapshots carry exactly the view's global epoch — no shard ahead, none
//!   behind) and equals the sequential singleton replay of the script
//!   prefix at that epoch — the sharded extension of the linearization
//!   property in `properties.rs`;
//! * the K per-shard WALs merge back into the one global history, and
//!   replaying that merge reproduces the exact unsharded final state.
//!
//! Determinism across K needs deterministic *batching* (batch boundaries
//! steer the shared settle RNG), so the script runs one writer under the
//! singleton policy: every update is its own batch on every path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pbdmm_graph::edge::EdgeId;
use pbdmm_graph::update::{Batch, Update};
use pbdmm_graph::wal::WalMeta;
use pbdmm_matching::verify::check_invariants;
use pbdmm_matching::{DynamicMatching, MatchingSnapshot};
use pbdmm_primitives::rng::SplitMix64;
use pbdmm_service::{
    merged_wal, replay_matching, CoalescePolicy, Done, ServiceConfig, ServiceStats, ShardedStats,
    ShardedView, WalConfig,
};

/// Steps per scripted run: 192 by default; the nightly CI job deepens the
/// sweep via `PBDMM_PROP_CASES` (steps = 4 × cases) at the same seeds.
fn steps() -> usize {
    let cases: usize = std::env::var("PBDMM_PROP_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    (cases * 4).max(192)
}

/// Every update its own batch: batch boundaries — and with them the settle
/// RNG consumption — are a pure function of the script, not of timing.
fn singleton() -> CoalescePolicy {
    CoalescePolicy {
        max_batch: 1,
        max_delay: Duration::ZERO,
    }
}

/// Live edges as id → vertex set (the state that must be invariant).
fn live_edges(m: &DynamicMatching) -> BTreeMap<u64, Vec<u32>> {
    m.structure()
        .edges
        .iter()
        .map(|(id, rec)| (id.raw(), rec.vertices.clone()))
        .collect()
}

/// The snapshot keeps vertex lists only for matched edges; the live set is
/// an id set — so the prefix comparison checks live **ids** plus the
/// matched edges with their full vertex lists.
fn snapshot_live_ids(s: &MatchingSnapshot) -> Vec<u64> {
    s.live_edges().map(|id| id.raw()).collect()
}

fn snapshot_matched_with_vertices(s: &MatchingSnapshot) -> BTreeMap<u64, Vec<u32>> {
    s.matched_edges()
        .map(|(id, vs)| (id.raw(), vs.as_slice().to_vec()))
        .collect()
}

fn sorted_matching(m: &DynamicMatching) -> Vec<EdgeId> {
    let mut ids = m.matching();
    ids.sort_unstable();
    ids
}

fn snapshot_sorted_matching(s: &MatchingSnapshot) -> Vec<EdgeId> {
    let mut ids: Vec<EdgeId> = s.matched_edges().map(|(id, _)| id).collect();
    ids.sort_unstable();
    ids
}

/// The deterministic writer script: a fixed interleaving of inserts (mostly
/// rank-2, a quarter rank-3, vertex pairs that frequently straddle shard
/// boundaries for every K under test) and deletes of its own committed
/// ids. Each ticket is awaited, so the submission order *is* the
/// completion order and the op log below is the exact global history.
fn run_script(h: &pbdmm_service::ServiceHandle, seed: u64, n: usize) -> Vec<Update> {
    let mut rng = SplitMix64::new(seed);
    let mut owned: Vec<EdgeId> = Vec::new();
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        if !owned.is_empty() && rng.bounded(10) < 4 {
            let id = owned.swap_remove(rng.bounded(owned.len() as u64) as usize);
            let c = h.delete(id).wait().expect("delete of own committed id");
            assert!(matches!(c.done, Done::Deleted(d) if d == id));
            ops.push(Update::Delete(id));
        } else {
            let a = rng.bounded(512) as u32;
            let b = a + 1 + rng.bounded(9) as u32;
            let vs = if rng.bounded(4) == 0 {
                vec![a, b, b + 1 + rng.bounded(5) as u32]
            } else {
                vec![a, b]
            };
            match h.insert(vs.clone()).wait().expect("insert").done {
                Done::Inserted(id) => owned.push(id),
                other => panic!("expected insert completion, got {other:?}"),
            }
            ops.push(Update::Insert(vs));
        }
    }
    ops
}

/// What one scripted run produced, reduced to the byte-comparable facts.
struct RunOutcome {
    ops: Vec<Update>,
    live: BTreeMap<u64, Vec<u32>>,
    matching: Vec<EdgeId>,
    final_line: String,
    stats: ServiceStats,
    routing: ShardedStats,
    views: Vec<ShardedView>,
}

/// Run the seed's script against a K-shard service. `observers` concurrent
/// reader threads poll [`pbdmm_service::ShardedQuery::view`] the whole
/// time; `wal_dir` switches on per-shard durable logging (flush, no fsync
/// — these tests measure semantics, not disks).
fn scripted_run(
    k: usize,
    seed: u64,
    observers: usize,
    wal_dir: Option<&std::path::Path>,
) -> RunOutcome {
    let structure_seed = 0x5AA2D ^ seed;
    let mut builder = ServiceConfig::builder().policy(singleton()).shards(k);
    if let Some(dir) = wal_dir {
        let mut cfg = WalConfig::dir(
            dir,
            WalMeta {
                structure: "matching".into(),
                seed: structure_seed,
                ids_recycling: false,
            },
        );
        cfg.sync = false;
        builder = builder.wal(cfg);
    }
    let (svc, query) = builder
        .start_sharded(move || DynamicMatching::with_seed(structure_seed))
        .expect("sharded service starts");

    let stop = AtomicBool::new(false);
    let views: Mutex<Vec<ShardedView>> = Mutex::new(Vec::new());
    let ops = std::thread::scope(|scope| {
        for _ in 0..observers {
            let q = query.clone();
            let (stop, views) = (&stop, &views);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    views.lock().unwrap().push(q.view());
                    std::thread::yield_now();
                }
            });
        }
        let h = svc.handle();
        let ops = run_script(&h, seed, steps());
        stop.store(true, Ordering::Relaxed);
        ops
    });

    let (mut replicas, routing) = svc.shutdown();
    let m = replicas.remove(0);
    check_invariants(&m).expect("final invariants");
    // Whatever K, the replicas the tier shuts down with must agree among
    // themselves before we compare them across runs.
    for (s, r) in replicas.iter().enumerate() {
        assert_eq!(
            live_edges(r),
            live_edges(&m),
            "shard {} live set diverged from shard 0",
            s + 1
        );
        assert_eq!(
            sorted_matching(r),
            sorted_matching(&m),
            "shard {} matching diverged from shard 0",
            s + 1
        );
    }
    RunOutcome {
        ops,
        live: live_edges(&m),
        matching: sorted_matching(&m),
        final_line: format!(
            "final: epoch={} edges={} matching={}",
            m.epoch(),
            m.num_edges(),
            m.matching_size()
        ),
        stats: routing.service,
        routing,
        views: views.into_inner().unwrap(),
    }
}

/// The deterministic slice of the counters: flush attribution is
/// timing-dependent even under the singleton policy (idle vs close on the
/// final drain), so it stays out of the cross-K comparison.
fn stat_key(s: &ServiceStats) -> (u64, u64, u64, u64, usize, u64) {
    (
        s.updates,
        s.batches,
        s.dup_deletes,
        s.rejected,
        s.max_batch_len,
        s.wal_batches,
    )
}

#[test]
fn final_state_is_byte_identical_across_k() {
    for seed in [11u64, 12, 13] {
        let base = scripted_run(1, seed, 0, None);
        assert_eq!(base.routing.routed, vec![base.stats.updates]);
        for k in [2usize, 4] {
            let run = scripted_run(k, seed, 0, None);
            assert_eq!(
                run.live, base.live,
                "seed {seed}: K={k} live edge set differs from K=1"
            );
            assert_eq!(
                run.matching, base.matching,
                "seed {seed}: K={k} matching differs from K=1"
            );
            assert_eq!(
                run.final_line, base.final_line,
                "seed {seed}: K={k} final line differs from K=1"
            );
            assert_eq!(
                stat_key(&run.stats),
                stat_key(&base.stats),
                "seed {seed}: K={k} service counters differ from K=1"
            );
            // Routing bookkeeping: every update has exactly one owner shard.
            assert_eq!(run.routing.routed.len(), k);
            assert_eq!(
                run.routing.routed.iter().sum::<u64>(),
                run.stats.updates,
                "seed {seed}: K={k} routed counts must partition the updates"
            );
        }
    }
}

#[test]
fn concurrent_views_linearize_to_the_sequential_prefix() {
    for k in [1usize, 2, 4] {
        let seed = 21;
        let structure_seed = 0x5AA2D ^ seed;
        let run = scripted_run(k, seed, 2, None);
        assert!(
            !run.views.is_empty(),
            "observers must capture at least one view"
        );

        // Walk the observed epochs in order, advancing one sequential
        // replica of the script prefix alongside; singleton batches make
        // the global epoch exactly the number of applied updates.
        let mut views = run.views;
        views.sort_by_key(|v| v.epoch);
        views.dedup_by_key(|v| v.epoch);
        let mut seq = DynamicMatching::with_seed(structure_seed);
        let mut applied = 0usize;
        for view in &views {
            assert_eq!(view.shards.len(), k.max(1));
            assert!(
                view.epoch as usize <= run.ops.len(),
                "observed epoch beyond the script"
            );
            while (applied as u64) < view.epoch {
                seq.apply(Batch::from(vec![run.ops[applied].clone()]))
                    .expect("script prefix is sequentially valid");
                applied += 1;
            }
            let want_live: Vec<u64> = live_edges(&seq).into_keys().collect();
            let want_matching = sorted_matching(&seq);
            let want_matched_vertices: BTreeMap<u64, Vec<u32>> = seq
                .structure()
                .edges
                .iter()
                .filter(|(id, _)| want_matching.binary_search(id).is_ok())
                .map(|(id, rec)| (id.raw(), rec.vertices.clone()))
                .collect();
            for (s, snap) in view.shards.iter().enumerate() {
                // Consistency: each shard snapshot is frozen at exactly the
                // view's global epoch — no shard ahead, none behind.
                assert_eq!(
                    snap.epoch(),
                    view.epoch,
                    "K={k}: shard {s} snapshot epoch off the global epoch"
                );
                snap.check_consistency().expect("snapshot self-consistency");
                assert_eq!(
                    snapshot_live_ids(snap),
                    want_live,
                    "K={k}: shard {s} view at epoch {} is not the replay prefix",
                    view.epoch
                );
                assert_eq!(
                    snapshot_sorted_matching(snap),
                    want_matching,
                    "K={k}: shard {s} matching at epoch {} is not the replay prefix",
                    view.epoch
                );
                assert_eq!(
                    snapshot_matched_with_vertices(snap),
                    want_matched_vertices,
                    "K={k}: shard {s} matched vertex lists at epoch {} differ",
                    view.epoch
                );
            }
        }
    }
}

#[test]
fn per_shard_wals_merge_to_the_unsharded_history() {
    let seed = 31;
    let base = scripted_run(1, seed, 0, None);
    for k in [2usize, 4] {
        let dir =
            std::env::temp_dir().join(format!("pbdmm_sharding_merge_k{k}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let run = scripted_run(k, seed, 0, Some(&dir));
        assert_eq!(run.final_line, base.final_line);
        assert_eq!(run.stats.wal_batches, run.stats.batches);

        // The K per-shard logs merge (via the recorded routes) back into
        // one global history whose replay is the unsharded final state.
        let wal = merged_wal(&dir, k).expect("per-shard logs merge");
        assert!(!wal.truncated, "clean shutdown leaves no torn tail");
        assert_eq!(wal.total_updates() as u64, run.stats.updates);
        let (replayed, report) = replay_matching(&wal).expect("merged replay");
        assert_eq!(report.updates, run.stats.updates);
        assert_eq!(live_edges(&replayed), base.live);
        assert_eq!(sorted_matching(&replayed), base.matching);
        check_invariants(&replayed).expect("replayed invariants");
        std::fs::remove_dir_all(&dir).ok();
    }
}
