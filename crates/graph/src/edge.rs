//! Vertex and edge identifiers and the hyperedge representation.
//!
//! A hypergraph edge is a set of vertices; the paper assumes edges carry
//! unique identifiers hashable in constant time (§2, Dynamic model). Vertex
//! ids are dense `u32`s; edge ids are `u64`s handed out by whatever structure
//! owns the edges.

/// A vertex identifier. Dense ids index directly into per-vertex tables.
pub type VertexId = u32;

/// A unique edge identifier (§2: "edges have unique identifiers so they can
/// be hashed or compared for equality in constant time").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u64);

impl EdgeId {
    /// The raw identifier value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The vertex set of a hyperedge. Kept sorted and duplicate-free
/// (see [`normalize_vertices`]). For rank-2 graphs this is just the two
/// endpoints.
pub type EdgeVertices = Vec<VertexId>;

/// Sort and deduplicate a vertex list into canonical edge form.
/// Returns `None` for an empty vertex set (not a legal hyperedge).
pub fn normalize_vertices(mut vs: Vec<VertexId>) -> Option<EdgeVertices> {
    vs.sort_unstable();
    vs.dedup();
    if vs.is_empty() {
        None
    } else {
        Some(vs)
    }
}

/// The cardinality (number of endpoints) of an edge: `|e|` in the paper.
#[inline]
pub fn cardinality(vs: &[VertexId]) -> usize {
    vs.len()
}

/// Do two edges share a vertex? (The paper's "incident"/"neighbors"; both
/// inputs must be in canonical sorted form — this is a linear merge.)
pub fn edges_intersect(a: &[VertexId], b: &[VertexId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sorts_and_dedups() {
        assert_eq!(normalize_vertices(vec![3, 1, 3, 2]), Some(vec![1, 2, 3]));
        assert_eq!(normalize_vertices(vec![]), None);
        assert_eq!(normalize_vertices(vec![5]), Some(vec![5]));
    }

    #[test]
    fn intersect_detects_shared_vertex() {
        assert!(edges_intersect(&[1, 2], &[2, 3]));
        assert!(!edges_intersect(&[1, 2], &[3, 4]));
        assert!(edges_intersect(&[1, 5, 9], &[0, 9]));
        assert!(!edges_intersect(&[], &[1]));
    }

    #[test]
    fn edge_id_display_and_raw() {
        let e = EdgeId(17);
        assert_eq!(format!("{e}"), "e17");
        assert_eq!(e.raw(), 17);
    }
}
