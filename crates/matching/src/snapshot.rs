//! Epoch-versioned immutable snapshots: the read path.
//!
//! The batch-dynamic structure is single-writer by construction — one
//! `apply` at a time mutates the leveled structure — but a serving
//! deployment must answer point queries (*is this vertex matched? who is
//! its partner? how big is the matching?*) **while** batches apply. The
//! mechanism here is the flat-snapshot pattern of parallel graph systems:
//! after every batch the writer publishes a compact immutable
//! [`MatchingSnapshot`] into a [`SnapshotCell`] by atomically swapping an
//! [`Arc`]; any number of concurrent readers resolve queries against the
//! latest published snapshot through a cloneable [`SnapshotReader`]
//! without ever blocking the writer.
//!
//! **Incremental publication.** Snapshots are built on chunked
//! copy-on-write maps (`CowMap`), so the writer does *not* rebuild the
//! whole snapshot per batch: `apply` emits a [`SnapshotDelta`] (the edges
//! and match bindings the batch changed) and the publisher patches the
//! previous snapshot in `O(batch)` via [`MatchingSnapshot::apply_delta`].
//! Unchanged chunks are shared between consecutive snapshots; readers
//! holding an old `Arc` keep exactly the state they loaded. The canonical
//! chunk form makes `PartialEq` still mean *content* equality, so a
//! patched snapshot compares equal to a from-scratch
//! [`MatchingSnapshot::capture`] of the same state (asserted in debug
//! builds and by the property suite).
//!
//! **Epochs.** Every snapshot carries an *epoch*: the total number of
//! updates (insertions + deletions) the structure had applied when the
//! snapshot was captured. Epochs are exactly the batch boundaries of the
//! apply history, which makes two properties checkable:
//!
//! * **prefix consistency** — a snapshot at epoch `E` equals the state
//!   produced by sequentially replaying the first `E` updates of the
//!   write-ahead log (asserted by the service's property tests);
//! * **read-your-writes** — the ingest service completes a ticket only
//!   *after* the snapshot containing its batch is published, so a submitter
//!   that observes completion epoch `E` never reads a snapshot older
//!   than `E`.
//!
//! **Delta subscriptions.** The cell retains a short ring of recently
//! published deltas; [`SnapshotReader::changes_since`] turns it into a
//! catch-up API — a subscriber at epoch `E` gets either *up-to-date*, a
//! merged delta covering `E → latest`, or a full resync snapshot if it
//! fell too far behind ([`Changes`]).
//!
//! [`Snapshots`] is the capability trait: any structure that can capture
//! and publish snapshots (currently [`DynamicMatching`] here and
//! `DynamicSetCover` in `pbdmm-setcover`) plugs into the generic serving
//! layer (`pbdmm-service`'s `QueryHandle`).
//!
//! # Example
//! ```
//! use pbdmm_matching::api::Batch;
//! use pbdmm_matching::snapshot::{Snapshot, Snapshots};
//! use pbdmm_matching::DynamicMatching;
//!
//! let mut m = DynamicMatching::with_seed(7);
//! let reader = m.enable_snapshots(); // cloneable; Send + Sync
//! let out = m.apply(Batch::new().inserts([vec![0, 1], vec![2, 3]])).unwrap();
//!
//! // `reader` could live on any number of other threads.
//! let snap = reader.latest();
//! assert_eq!(snap.epoch(), 2); // two updates applied so far
//! assert!(snap.is_matched(0) && snap.is_matched(2));
//! assert_eq!(snap.matched_edge_of(1), Some(out.inserted[0]));
//! assert_eq!(snap.partner(0), Some(1));
//! assert_eq!(snap.stats().matching_size, 2);
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use pbdmm_graph::edge::{EdgeId, EdgeVertices, VertexId};

use crate::dynamic::DynamicMatching;

// ---------------------------------------------------------------------------
// CowMap: a chunked copy-on-write map over dense integer keys
// ---------------------------------------------------------------------------

/// Keys per leaf chunk.
const CHUNK: usize = 64;
/// Chunks per spine group.
const GROUP: usize = 64;
/// Keys per spine group.
const GROUP_SPAN: u64 = (CHUNK * GROUP) as u64;

/// A leaf chunk: a fixed-width window of `CHUNK` consecutive keys.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Chunk<V> {
    /// Always exactly `CHUNK` slots; `slots[k % CHUNK]` holds key `k`.
    slots: Vec<Option<V>>,
    /// Occupied slots (kept so "chunk became empty" is O(1)).
    len: u32,
}

impl<V> Chunk<V> {
    fn empty() -> Self {
        Chunk {
            slots: (0..CHUNK).map(|_| None).collect(),
            len: 0,
        }
    }
}

type Group<V> = Vec<Option<Arc<Chunk<V>>>>;

/// A persistent (copy-on-write) map from dense `u64` keys to values,
/// stored as a two-level spine of `Arc`-shared fixed-size chunks.
///
/// `patch` clones only the spine and the chunks an edit touches, so
/// producing the next version costs `O(edits · CHUNK + spine)` regardless
/// of total map size — the mechanism behind O(batch) snapshot publication.
///
/// **Canonical form** (maintained by every constructor and `patch`): an
/// empty chunk is stored as `None`, trailing `None` chunks are trimmed
/// from each group, and trailing `None` groups are trimmed from the
/// spine. Hence the derived `PartialEq` is *content* equality: two maps
/// holding the same key→value pairs always compare equal, no matter what
/// sequence of patches produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CowMap<V> {
    groups: Vec<Option<Arc<Group<V>>>>,
    len: usize,
}

impl<V: Clone> CowMap<V> {
    /// The empty map.
    pub(crate) fn new() -> Self {
        CowMap {
            groups: Vec::new(),
            len: 0,
        }
    }

    /// Number of keys present.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Look up `key`. O(1).
    pub(crate) fn get(&self, key: u64) -> Option<&V> {
        let g = (key / GROUP_SPAN) as usize;
        let group = self.groups.get(g)?.as_ref()?;
        let c = (key as usize / CHUNK) % GROUP;
        let chunk = group.get(c)?.as_ref()?;
        chunk.slots[key as usize % CHUNK].as_ref()
    }

    /// Is `key` present? O(1).
    pub(crate) fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Build from `(key, value)` pairs with strictly ascending keys.
    pub(crate) fn from_sorted<I: IntoIterator<Item = (u64, V)>>(pairs: I) -> Self {
        let mut map = CowMap::new();
        let mut chunk = Chunk::empty();
        let mut chunk_idx: Option<u64> = None; // key / CHUNK of the open chunk
        let flush = |map: &mut CowMap<V>, chunk: &mut Chunk<V>, idx: u64| {
            let done = std::mem::replace(chunk, Chunk::empty());
            let g = (idx as usize) / GROUP;
            let c = (idx as usize) % GROUP;
            if map.groups.len() <= g {
                map.groups.resize(g + 1, None);
            }
            let group = map.groups[g].get_or_insert_with(|| Arc::new(vec![None; GROUP]));
            Arc::make_mut(group)[c] = Some(Arc::new(done));
        };
        let mut prev: Option<u64> = None;
        for (key, value) in pairs {
            if let Some(p) = prev {
                debug_assert!(key > p, "from_sorted keys must be strictly ascending");
            }
            prev = Some(key);
            let idx = key / CHUNK as u64;
            match chunk_idx {
                Some(open) if open == idx => {}
                Some(open) => {
                    flush(&mut map, &mut chunk, open);
                    chunk_idx = Some(idx);
                }
                None => chunk_idx = Some(idx),
            }
            chunk.slots[key as usize % CHUNK] = Some(value);
            chunk.len += 1;
            map.len += 1;
        }
        if let Some(open) = chunk_idx {
            if chunk.len > 0 {
                flush(&mut map, &mut chunk, open);
            }
        }
        map.trim_group_tails();
        map
    }

    /// Produce the next version with `edits` applied: `(key, Some(v))`
    /// upserts, `(key, None)` removes. Edits must be sorted by key and
    /// unique per key. Removing an absent key and re-inserting a present
    /// one are tolerated (`len` only moves on real membership changes).
    ///
    /// Cost: `O(edits · CHUNK + touched groups · GROUP + spine)`; all
    /// untouched chunks are shared with `self`.
    pub(crate) fn patch(&self, edits: &[(u64, Option<V>)]) -> Self {
        debug_assert!(
            edits.windows(2).all(|w| w[0].0 < w[1].0),
            "patch edits must be sorted and unique by key"
        );
        let mut next = CowMap {
            groups: self.groups.clone(),
            len: self.len,
        };
        let mut i = 0;
        while i < edits.len() {
            let g = (edits[i].0 / GROUP_SPAN) as usize;
            // Gather this group's run of edits.
            let mut j = i;
            while j < edits.len() && (edits[j].0 / GROUP_SPAN) as usize == g {
                j += 1;
            }
            if next.groups.len() <= g {
                next.groups.resize(g + 1, None);
            }
            let group = next.groups[g].get_or_insert_with(|| Arc::new(vec![None; GROUP]));
            let group = Arc::make_mut(group);
            if group.len() < GROUP {
                group.resize(GROUP, None); // un-trim for in-place edits
            }
            let mut k = i;
            while k < j {
                let c = (edits[k].0 as usize / CHUNK) % GROUP;
                let mut l = k;
                while l < j && (edits[l].0 as usize / CHUNK) % GROUP == c {
                    l += 1;
                }
                let chunk = match &group[c] {
                    Some(existing) => {
                        let mut chunk = Chunk::clone(existing);
                        for &(key, ref v) in &edits[k..l] {
                            let slot = &mut chunk.slots[key as usize % CHUNK];
                            match (slot.is_some(), v.is_some()) {
                                (false, true) => {
                                    chunk.len += 1;
                                    next.len += 1;
                                }
                                (true, false) => {
                                    chunk.len -= 1;
                                    next.len -= 1;
                                }
                                _ => {}
                            }
                            *slot = v.clone();
                        }
                        chunk
                    }
                    None => {
                        let mut chunk = Chunk::empty();
                        for &(key, ref v) in &edits[k..l] {
                            if v.is_some() {
                                chunk.len += 1;
                                next.len += 1;
                                chunk.slots[key as usize % CHUNK] = v.clone();
                            }
                        }
                        chunk
                    }
                };
                group[c] = if chunk.len == 0 {
                    None
                } else {
                    Some(Arc::new(chunk))
                };
                k = l;
            }
            // Re-canonicalize this group: trim trailing Nones; drop if empty.
            while group.last().is_some_and(|c| c.is_none()) {
                group.pop();
            }
            if group.is_empty() {
                next.groups[g] = None;
            }
            i = j;
        }
        while next.groups.last().is_some_and(|g| g.is_none()) {
            next.groups.pop();
        }
        next
    }

    /// Iterate `(key, &value)` pairs in ascending key order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.groups.iter().enumerate().flat_map(|(g, group)| {
            group.iter().flat_map(move |group| {
                group.iter().enumerate().flat_map(move |(c, chunk)| {
                    chunk.iter().flat_map(move |chunk| {
                        chunk.slots.iter().enumerate().filter_map(move |(s, v)| {
                            v.as_ref()
                                .map(|v| (g as u64 * GROUP_SPAN + (c * CHUNK + s) as u64, v))
                        })
                    })
                })
            })
        })
    }

    /// Canonicalize after bulk construction: trim trailing `None` chunks in
    /// every group and trailing `None` groups in the spine.
    fn trim_group_tails(&mut self) {
        for slot in &mut self.groups {
            if let Some(group) = slot {
                let group = Arc::make_mut(group);
                while group.last().is_some_and(|c| c.is_none()) {
                    group.pop();
                }
                if group.is_empty() {
                    *slot = None;
                }
            }
        }
        while self.groups.last().is_some_and(|g| g.is_none()) {
            self.groups.pop();
        }
    }
}

/// Sort `edits` by key and keep the **last** edit pushed for each key.
/// Callers push removals before inserts, so an id removed and re-added in
/// one batch (recycling) resolves to the insert.
fn canonicalize_edits<V>(edits: &mut Vec<(u64, Option<V>)>) {
    edits.sort_by_key(|e| e.0); // stable: preserves push order per key
    let mut w = 0;
    for i in 0..edits.len() {
        if w > 0 && edits[w - 1].0 == edits[i].0 {
            edits.swap(w - 1, i);
        } else {
            edits.swap(w, i);
            w += 1;
        }
    }
    edits.truncate(w);
}

// ---------------------------------------------------------------------------
// SnapshotDelta
// ---------------------------------------------------------------------------

/// What one applied batch changed, as seen by the snapshot layer: the edge
/// membership changes and the matched-binding changes between two epochs.
///
/// Produced by `DynamicMatching::apply` (when snapshots are enabled),
/// consumed by [`MatchingSnapshot::apply_delta`] and streamed to
/// subscribers via [`SnapshotReader::changes_since`].
///
/// Conventions (all vectors sorted ascending by id):
/// * `matched` lists edges matched at `to_epoch` that were unmatched at
///   `from_epoch` **or** whose vertex binding changed (an id recycled
///   within the span);
/// * `unmatched` lists edges matched at `from_epoch` that are unmatched at
///   `to_epoch` **or** rebound — a rebind appears in *both* lists;
/// * removals are idempotent: a delta may delete or unmatch ids the
///   consumer never saw (this falls out of merging), and appliers treat
///   those as no-ops.
///
/// # Example
///
/// A delta patches the snapshot it spans *from* into the snapshot it
/// spans *to*, and the patched result content-equals a from-scratch
/// capture of the same state:
///
/// ```
/// use pbdmm_matching::api::Batch;
/// use pbdmm_matching::snapshot::{Changes, MatchingSnapshot, Snapshots};
/// use pbdmm_matching::DynamicMatching;
///
/// let mut m = DynamicMatching::with_seed(3);
/// let reader = m.enable_snapshots();
/// let base = reader.latest(); // epoch 0, empty
///
/// m.apply(Batch::new().inserts([vec![0, 1], vec![2, 3]])).unwrap();
/// let delta = match reader.changes_since(base.epoch()) {
///     Changes::Delta { delta, .. } => delta,
///     _ => unreachable!("one publish behind, the ring holds it"),
/// };
/// assert_eq!((delta.from_epoch, delta.to_epoch), (0, 2));
/// assert_eq!(delta.inserted.len(), 2);
///
/// let patched = base.apply_delta(&delta);
/// assert_eq!(patched, MatchingSnapshot::capture(&m));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDelta {
    /// Epoch this delta patches *from* (exclusive floor of the span).
    pub from_epoch: u64,
    /// Epoch this delta patches *to*.
    pub to_epoch: u64,
    /// Edge ids inserted (live at `to`, not live at `from`), ascending.
    pub inserted: Vec<EdgeId>,
    /// Edge ids deleted (live at `from`, not live at `to`), ascending.
    pub deleted: Vec<EdgeId>,
    /// Edges matched at `to` (new matches and rebinds), with their vertex
    /// lists, ascending by id.
    pub matched: Vec<(EdgeId, EdgeVertices)>,
    /// Edges un-matched since `from` (including rebinds), ascending.
    pub unmatched: Vec<EdgeId>,
}

impl SnapshotDelta {
    /// A no-op delta spanning `from → to`.
    pub fn empty(from_epoch: u64, to_epoch: u64) -> Self {
        SnapshotDelta {
            from_epoch,
            to_epoch,
            inserted: Vec::new(),
            deleted: Vec::new(),
            matched: Vec::new(),
            unmatched: Vec::new(),
        }
    }

    /// Does this delta change anything at all?
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty()
            && self.deleted.is_empty()
            && self.matched.is_empty()
            && self.unmatched.is_empty()
    }

    /// Compose two consecutive deltas (`older.to_epoch` must equal
    /// `newer.from_epoch`) into one spanning `older.from → newer.to`.
    /// Applying the result equals applying `older` then `newer`.
    pub fn merge(older: SnapshotDelta, newer: &SnapshotDelta) -> SnapshotDelta {
        debug_assert_eq!(
            older.to_epoch, newer.from_epoch,
            "merging non-adjacent deltas"
        );
        // Newer wins on match bindings: drop older.matched entries that the
        // newer span un-matched or rebound, then upsert newer.matched.
        let mut matched: Vec<(EdgeId, EdgeVertices)> = older
            .matched
            .into_iter()
            .filter(|(e, _)| newer.unmatched.binary_search(e).is_err())
            .collect();
        for (e, vs) in &newer.matched {
            match matched.binary_search_by_key(e, |&(id, _)| id) {
                Ok(i) => matched[i].1 = vs.clone(),
                Err(i) => matched.insert(i, (*e, vs.clone())),
            }
        }
        // An edge the newer span deleted was never visible if the older span
        // inserted it; everything else accumulates (removes are idempotent).
        let mut inserted: Vec<EdgeId> = older
            .inserted
            .into_iter()
            .filter(|e| newer.deleted.binary_search(e).is_err())
            .collect();
        inserted.extend(&newer.inserted);
        inserted.sort_unstable();
        inserted.dedup();
        let mut deleted = older.deleted;
        deleted.extend(&newer.deleted);
        deleted.sort_unstable();
        deleted.dedup();
        let mut unmatched = older.unmatched;
        unmatched.extend(&newer.unmatched);
        unmatched.sort_unstable();
        unmatched.dedup();
        SnapshotDelta {
            from_epoch: older.from_epoch,
            to_epoch: newer.to_epoch,
            inserted,
            deleted,
            matched,
            unmatched,
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot trait, cell, reader
// ---------------------------------------------------------------------------

/// Anything an epoch-versioned snapshot must expose to the generic serving
/// layer: its position in the apply history, and the delta type its
/// publisher emits for subscription streaming.
pub trait Snapshot {
    /// The change record published alongside each new snapshot version.
    /// Structures without incremental maintenance use `()`.
    type Delta: Clone + Send + Sync + std::fmt::Debug + 'static;

    /// Number of updates the structure had applied when this snapshot was
    /// captured. Monotone across publications; equal to the `seq`-space
    /// position right after the capturing batch.
    fn epoch(&self) -> u64;

    /// Compose two consecutive deltas into one spanning both. Used by
    /// [`SnapshotReader::changes_since`] to catch a subscriber up over
    /// several publications in one message.
    fn merge_delta(older: Self::Delta, newer: &Self::Delta) -> Self::Delta;
}

/// How many recent deltas a [`SnapshotCell`] retains for
/// [`SnapshotReader::changes_since`]. A subscriber more than this many
/// publications behind gets a full [`Changes::Resync`].
const DELTA_RING_CAP: usize = 64;

/// The answer to [`SnapshotReader::changes_since`]: how a subscriber at
/// some epoch catches up to the latest published snapshot.
#[derive(Debug)]
pub enum Changes<T: Snapshot> {
    /// The subscriber already holds the latest epoch.
    UpToDate,
    /// A (merged) delta advancing the subscriber to `to_epoch`.
    Delta {
        /// Epoch the subscriber is at after applying `delta`.
        to_epoch: u64,
        /// The composed change record.
        delta: T::Delta,
    },
    /// The subscriber fell behind the delta ring (or its epoch predates
    /// it); here is the latest full snapshot to resync from.
    Resync(Arc<T>),
}

/// A single-slot publication point: the writer swaps in a fresh
/// [`Arc`]-wrapped snapshot, concurrent readers grab the latest one.
///
/// The cell is a `RwLock<Arc<T>>` used *only* for the pointer swap: readers
/// hold the lock just long enough to clone the `Arc` (two atomic ops) and
/// the writer just long enough to store it, so neither side ever blocks on
/// snapshot-sized work. This is the std-only equivalent of an atomic
/// `Arc` swap (no external `arc-swap` dependency).
///
/// Alongside the slot, the cell keeps a bounded ring of the most recent
/// [`Snapshot::Delta`]s (`(from_epoch, to_epoch, delta)`), fed by
/// [`Self::publish_with_delta`] and drained by
/// [`SnapshotReader::changes_since`].
#[derive(Debug)]
pub struct SnapshotCell<T: Snapshot> {
    slot: RwLock<Arc<T>>,
    /// Publication counter guarding the condvar below. Bumped *after* the
    /// slot swap, so a waiter that re-checks the slot on every pulse never
    /// misses a publication (slot-write happens-before pulse-bump).
    pulse: Mutex<u64>,
    published: Condvar,
    /// Recent deltas as `(from_epoch, to_epoch, delta)`, oldest first;
    /// consecutive entries chain (`entry[i].to == entry[i+1].from`).
    deltas: Mutex<DeltaRing<T>>,
}

/// The delta-ring entries of a [`SnapshotCell`]: `(from, to, delta)`.
type DeltaRing<T> = VecDeque<(u64, u64, Arc<<T as Snapshot>::Delta>)>;

impl<T: Snapshot> SnapshotCell<T> {
    /// Create a cell holding `initial`.
    pub fn new(initial: T) -> Self {
        SnapshotCell {
            slot: RwLock::new(Arc::new(initial)),
            pulse: Mutex::new(0),
            published: Condvar::new(),
            deltas: Mutex::new(VecDeque::new()),
        }
    }

    /// The latest published snapshot (cheap: clones the `Arc`, not the
    /// snapshot).
    pub fn load(&self) -> Arc<T> {
        self.slot.read().expect("snapshot cell poisoned").clone()
    }

    /// Atomically replace the published snapshot *without* a delta: the
    /// ring is cleared, so subscribers straddling this publication resync.
    /// Readers that already hold an `Arc` keep their (older) snapshot
    /// alive; new loads see `next`. Wakes every [`Self::wait_newer`]
    /// waiter.
    pub fn publish(&self, next: T) {
        let mut guard = self.slot.write().expect("snapshot cell poisoned");
        let old = std::mem::replace(&mut *guard, Arc::new(next));
        drop(guard);
        // If this was the last reference, the old snapshot's deallocation
        // (O(its size)) happens here — outside the lock, so readers are
        // never stalled behind it.
        drop(old);
        self.deltas.lock().expect("delta ring poisoned").clear();
        self.bump_pulse();
    }

    /// Atomically replace the published snapshot and record the delta that
    /// produced it (spanning the previous snapshot's epoch to `next`'s).
    /// Order matters: slot swap, then ring push, then pulse bump — a
    /// waiter woken by the pulse always finds the ring entry present.
    pub fn publish_with_delta(&self, next: T, delta: T::Delta) {
        let to = next.epoch();
        let mut guard = self.slot.write().expect("snapshot cell poisoned");
        let old = std::mem::replace(&mut *guard, Arc::new(next));
        drop(guard);
        let from = old.epoch();
        drop(old);
        {
            let mut ring = self.deltas.lock().expect("delta ring poisoned");
            if ring.len() == DELTA_RING_CAP {
                ring.pop_front();
            }
            ring.push_back((from, to, Arc::new(delta)));
        }
        self.bump_pulse();
    }

    fn bump_pulse(&self) {
        // Pulse strictly after the slot swap: a waiter woken by this notify
        // is guaranteed to observe (at least) the snapshot just published.
        let mut gen = self.pulse.lock().expect("snapshot pulse poisoned");
        *gen += 1;
        self.published.notify_all();
    }

    /// Block until a snapshot with epoch **greater than** `epoch` is
    /// published, or `timeout` elapses — whichever first — and return the
    /// latest snapshot either way (the caller distinguishes progress from
    /// timeout by its epoch). This is the primitive epoch *subscriptions*
    /// ride on: no polling loop, one condvar wakeup per publication.
    pub fn wait_newer(&self, epoch: u64, timeout: Duration) -> Arc<T> {
        let deadline = Instant::now() + timeout;
        let mut gen = self.pulse.lock().expect("snapshot pulse poisoned");
        loop {
            // Check the slot while holding the pulse lock: a publisher that
            // swapped the slot after this load cannot complete its pulse
            // bump (and drop its notify) until we wait — no lost wakeup.
            let snap = self.load();
            if snap.epoch() > epoch {
                return snap;
            }
            let now = Instant::now();
            if now >= deadline {
                return snap;
            }
            gen = self
                .published
                .wait_timeout(gen, deadline - now)
                .expect("snapshot pulse poisoned")
                .0;
        }
    }

    /// What changed since `epoch`? See [`SnapshotReader::changes_since`].
    pub fn changes_since(&self, epoch: u64) -> Changes<T> {
        let ring = self.deltas.lock().expect("delta ring poisoned");
        let latest = self.load();
        if latest.epoch() == epoch {
            return Changes::UpToDate;
        }
        // The ring chains from→to; a subscriber can be caught up iff some
        // retained entry starts exactly at its epoch.
        let Some(start) = ring.iter().position(|&(from, _, _)| from == epoch) else {
            return Changes::Resync(latest);
        };
        let mut merged: T::Delta = (*ring[start].2).clone();
        let mut to = ring[start].1;
        for (_, entry_to, delta) in ring.iter().skip(start + 1) {
            merged = T::merge_delta(merged, delta);
            to = *entry_to;
        }
        Changes::Delta {
            to_epoch: to,
            delta: merged,
        }
    }
}

/// The reader half of a [`SnapshotCell`]: cloneable, `Send + Sync`, and
/// never blocks the writer. Obtained from [`Snapshots::enable_snapshots`].
///
/// The full read surface: [`Self::latest`] (grab the newest snapshot),
/// [`Self::epoch`] (just its position), [`Self::wait_for_newer`] (block
/// until progress), and [`Self::changes_since`] (stream deltas).
#[derive(Debug)]
pub struct SnapshotReader<T: Snapshot> {
    cell: Arc<SnapshotCell<T>>,
}

impl<T: Snapshot> Clone for SnapshotReader<T> {
    fn clone(&self) -> Self {
        SnapshotReader {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<T: Snapshot> SnapshotReader<T> {
    /// Wrap an existing cell — for [`Snapshots`] implementations outside
    /// this crate (e.g. the set-cover adapter) that own their own
    /// publication point.
    pub fn from_cell(cell: Arc<SnapshotCell<T>>) -> Self {
        SnapshotReader { cell }
    }

    /// The latest published snapshot.
    pub fn latest(&self) -> Arc<T> {
        self.cell.load()
    }

    /// Epoch of the latest published snapshot.
    pub fn epoch(&self) -> u64 {
        self.latest().epoch()
    }

    /// Block until a snapshot **newer than** `epoch` is published or
    /// `timeout` elapses, returning the latest snapshot either way. See
    /// [`SnapshotCell::wait_newer`].
    pub fn wait_for_newer(&self, epoch: u64, timeout: Duration) -> Arc<T> {
        self.cell.wait_newer(epoch, timeout)
    }

    /// What changed since `epoch`? Returns [`Changes::UpToDate`] if the
    /// latest snapshot *is* epoch `epoch`, a single merged
    /// [`Changes::Delta`] if every publication since `epoch` is still in
    /// the cell's delta ring, and [`Changes::Resync`] (with the latest
    /// full snapshot) if the subscriber fell too far behind — the
    /// streaming pattern net subscriptions use instead of epoch pings.
    ///
    /// ```
    /// use pbdmm_matching::api::Batch;
    /// use pbdmm_matching::snapshot::{Changes, Snapshots};
    /// use pbdmm_matching::DynamicMatching;
    ///
    /// let mut m = DynamicMatching::with_seed(1);
    /// let reader = m.enable_snapshots();
    /// let mut at = reader.epoch(); // subscriber position: epoch 0
    ///
    /// m.apply(Batch::new().inserts([vec![0, 1], vec![2, 3]])).unwrap();
    /// match reader.changes_since(at) {
    ///     Changes::Delta { to_epoch, delta } => {
    ///         assert_eq!(to_epoch, 2);
    ///         assert_eq!(delta.inserted.len(), 2); // both edges arrived
    ///         at = to_epoch;
    ///     }
    ///     _ => unreachable!("one publish behind, ring holds it"),
    /// }
    /// assert!(matches!(reader.changes_since(at), Changes::UpToDate));
    /// ```
    pub fn changes_since(&self, epoch: u64) -> Changes<T> {
        self.cell.changes_since(epoch)
    }
}

/// A structure that can capture and publish epoch-versioned snapshots of
/// itself. This is the seam the serving layer's query side goes through,
/// exactly as [`crate::api::BatchDynamic`] is the seam for the write side.
pub trait Snapshots {
    /// The snapshot type this structure captures.
    type Snap: Snapshot + Send + Sync + 'static;

    /// Updates (insertions + deletions) applied so far — the epoch the next
    /// captured snapshot will carry.
    fn epoch(&self) -> u64;

    /// Capture an immutable snapshot of the current state at the current
    /// epoch. Cost is linear in the live state (edges + matches), *not* in
    /// history. (The publication path avoids this entirely by patching the
    /// previous snapshot with the batch's [`SnapshotDelta`].)
    fn snapshot(&self) -> Self::Snap;

    /// Start publishing: capture the current state immediately (so readers
    /// never observe "no snapshot") and re-publish after every subsequent
    /// `apply`. Returns a cloneable reader; calling this again returns a
    /// reader backed by the same cell.
    fn enable_snapshots(&mut self) -> SnapshotReader<Self::Snap>;
}

/// Summary counters of a [`MatchingSnapshot`] — the `stats()` answer the
/// serving layer returns without touching any per-edge data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Updates applied when the snapshot was captured.
    pub epoch: u64,
    /// Live edges.
    pub num_edges: usize,
    /// Matched edges.
    pub matching_size: usize,
}

// ---------------------------------------------------------------------------
// MatchingSnapshot
// ---------------------------------------------------------------------------

/// A compact immutable snapshot of a [`DynamicMatching`]: the live edge
/// set, the per-vertex matched-edge assignment, and the matched edges with
/// their vertex lists, each held in a chunked copy-on-write map
/// (`CowMap`) in canonical form so snapshots of equal states compare
/// equal.
///
/// Point queries are `O(1)` chunk lookups; the snapshot shares *chunks*
/// (not mutable state) with its neighbors in the publication history, so
/// readers keep any version alive (via [`Arc`]) for as long as they like
/// without blocking writers, and producing the next version via
/// [`Self::apply_delta`] costs `O(batch)` — not `O(state)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingSnapshot {
    epoch: u64,
    /// Live edge ids (key = raw edge id).
    live: CowMap<()>,
    /// Covering matched edge per vertex (key = vertex id).
    matched_of: CowMap<EdgeId>,
    /// Vertex list per matched edge (key = raw edge id).
    matched_edges: CowMap<EdgeVertices>,
}

impl MatchingSnapshot {
    /// Capture the current state of `m` at its current epoch. Cost is
    /// linear (plus sorting) in the *live* state — edges and matched
    /// vertices — independent of how large the vertex id space once grew.
    pub fn capture(m: &DynamicMatching) -> Self {
        let s = m.structure();
        let mut live: Vec<u64> = s.edges.ids().iter().map(|e| e.raw()).collect();
        live.sort_unstable();
        let mut matched_pairs: Vec<(EdgeId, EdgeVertices)> = s
            .matches
            .ids()
            .iter()
            .map(|&e| (e, s.edges[e].vertices.clone()))
            .collect();
        matched_pairs.sort_unstable_by_key(|&(e, _)| e);
        // Matched edges are vertex-disjoint (Invariant: one covering match
        // per vertex), so emitting each match's vertices yields every
        // covered vertex exactly once — no dense vertex-table scan needed.
        let mut matched_of: Vec<(u64, EdgeId)> = matched_pairs
            .iter()
            .flat_map(|(e, vs)| vs.iter().map(move |&v| (v as u64, *e)))
            .collect();
        matched_of.sort_unstable_by_key(|&(v, _)| v);
        MatchingSnapshot {
            epoch: Snapshots::epoch(m),
            live: CowMap::from_sorted(live.into_iter().map(|e| (e, ()))),
            matched_of: CowMap::from_sorted(matched_of),
            matched_edges: CowMap::from_sorted(
                matched_pairs.into_iter().map(|(e, vs)| (e.raw(), vs)),
            ),
        }
    }

    /// Produce the snapshot at `delta.to_epoch` by patching this one in
    /// `O(delta)`: all untouched chunks are shared. `delta.from_epoch`
    /// must equal this snapshot's epoch (debug-asserted). Removals of
    /// absent ids are no-ops, so merged deltas apply cleanly.
    pub fn apply_delta(&self, delta: &SnapshotDelta) -> MatchingSnapshot {
        debug_assert_eq!(
            delta.from_epoch, self.epoch,
            "delta does not start at this snapshot's epoch"
        );
        // Removals pushed before inserts per map; canonicalize_edits keeps
        // the *last* edit per key, so a recycled id resolves to its insert.
        let mut live_edits: Vec<(u64, Option<()>)> = Vec::new();
        live_edits.extend(delta.deleted.iter().map(|e| (e.raw(), None)));
        live_edits.extend(delta.inserted.iter().map(|e| (e.raw(), Some(()))));
        canonicalize_edits(&mut live_edits);

        let mut edge_edits: Vec<(u64, Option<EdgeVertices>)> = Vec::new();
        edge_edits.extend(delta.unmatched.iter().map(|e| (e.raw(), None)));
        edge_edits.extend(
            delta
                .matched
                .iter()
                .map(|(e, vs)| (e.raw(), Some(vs.clone()))),
        );
        canonicalize_edits(&mut edge_edits);

        // Vertex unbindings resolve the *old* vertex lists from this (base)
        // snapshot; an unmatch of an edge we never saw matched is a no-op.
        let mut of_edits: Vec<(u64, Option<EdgeId>)> = Vec::new();
        for e in &delta.unmatched {
            if let Some(vs) = self.matched_edges.get(e.raw()) {
                of_edits.extend(vs.iter().map(|&v| (v as u64, None)));
            }
        }
        for (e, vs) in &delta.matched {
            of_edits.extend(vs.iter().map(|&v| (v as u64, Some(*e))));
        }
        canonicalize_edits(&mut of_edits);

        MatchingSnapshot {
            epoch: delta.to_epoch,
            live: self.live.patch(&live_edits),
            matched_of: self.matched_of.patch(&of_edits),
            matched_edges: self.matched_edges.patch(&edge_edits),
        }
    }

    /// Updates applied when this snapshot was captured.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.live.len()
    }

    /// Number of matched edges.
    pub fn matching_size(&self) -> usize {
        self.matched_edges.len()
    }

    /// Summary counters.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            epoch: self.epoch,
            num_edges: self.num_edges(),
            matching_size: self.matching_size(),
        }
    }

    /// Was `e` a live edge at this epoch?
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.live.contains(e.raw())
    }

    /// Was `e` a matched edge at this epoch?
    pub fn is_matched_edge(&self, e: EdgeId) -> bool {
        self.matched_edges.contains(e.raw())
    }

    /// Was vertex `v` covered by the matching at this epoch?
    pub fn is_matched(&self, v: VertexId) -> bool {
        self.matched_edge_of(v).is_some()
    }

    /// The matched edge covering `v` at this epoch, if any.
    pub fn matched_edge_of(&self, v: VertexId) -> Option<EdgeId> {
        self.matched_of.get(v as u64).copied()
    }

    /// Vertex list of a matched edge (canonical order), if `e` was matched.
    pub fn edge_vertices(&self, e: EdgeId) -> Option<&[VertexId]> {
        self.matched_edges.get(e.raw()).map(|vs| vs.as_slice())
    }

    /// The partner of `v`: the first *other* vertex of the matched edge
    /// covering `v` (for a graph edge `{u, v}` this is the unique partner;
    /// for a hyperedge use [`Self::partners`] to see all co-members).
    /// `None` if `v` is uncovered or its matched edge is the singleton
    /// `{v}`.
    pub fn partner(&self, v: VertexId) -> Option<VertexId> {
        self.partners(v)?.iter().copied().find(|&u| u != v)
    }

    /// All vertices of the matched edge covering `v` (including `v`
    /// itself), or `None` if `v` is uncovered.
    pub fn partners(&self, v: VertexId) -> Option<&[VertexId]> {
        self.edge_vertices(self.matched_edge_of(v)?)
    }

    /// Live edge ids, ascending.
    pub fn live_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.live.iter().map(|(e, _)| EdgeId(e))
    }

    /// `(vertex, covering matched edge)` pairs, ascending by vertex.
    pub fn matched_vertices(&self) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.matched_of.iter().map(|(v, &e)| (v as VertexId, e))
    }

    /// Matched edges with their vertex lists, ascending by edge id.
    pub fn matched_edges(&self) -> impl Iterator<Item = (EdgeId, &EdgeVertices)> + '_ {
        self.matched_edges.iter().map(|(e, vs)| (EdgeId(e), vs))
    }

    /// Internal cross-consistency of the snapshot itself: every matched
    /// edge is live, covers exactly its own vertices in the per-vertex
    /// table, and no vertex points at a non-matched edge. Readers use this
    /// as the "query failed" predicate under concurrent load — a published
    /// snapshot must *always* pass.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (e, vs) in self.matched_edges() {
            if !self.contains_edge(e) {
                return Err(format!("matched edge {e} is not live"));
            }
            for &v in vs.iter() {
                if self.matched_edge_of(v) != Some(e) {
                    return Err(format!("vertex {v} of matched edge {e} not mapped to it"));
                }
            }
        }
        for (v, e) in self.matched_vertices() {
            if !self.is_matched_edge(e) {
                return Err(format!("vertex {v} mapped to non-matched edge {e}"));
            }
        }
        Ok(())
    }
}

impl Snapshot for MatchingSnapshot {
    type Delta = SnapshotDelta;

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn merge_delta(older: SnapshotDelta, newer: &SnapshotDelta) -> SnapshotDelta {
        SnapshotDelta::merge(older, newer)
    }
}

impl Snapshots for DynamicMatching {
    type Snap = MatchingSnapshot;

    fn epoch(&self) -> u64 {
        DynamicMatching::epoch(self)
    }

    fn snapshot(&self) -> MatchingSnapshot {
        MatchingSnapshot::capture(self)
    }

    fn enable_snapshots(&mut self) -> SnapshotReader<MatchingSnapshot> {
        SnapshotReader::from_cell(self.snapshot_cell())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Batch;

    #[test]
    fn snapshot_reflects_state_and_epoch() {
        let mut m = DynamicMatching::with_seed(1);
        let r = m.enable_snapshots();
        assert_eq!(r.epoch(), 0);
        assert_eq!(r.latest().num_edges(), 0);

        let out = m
            .apply(Batch::new().inserts([vec![0, 1], vec![1, 2], vec![2, 3]]))
            .unwrap();
        let snap = r.latest();
        assert_eq!(snap.epoch(), 3);
        assert_eq!(snap.num_edges(), 3);
        assert_eq!(snap.matching_size(), m.matching_size());
        snap.check_consistency().unwrap();
        for &id in &out.inserted {
            assert!(snap.contains_edge(id));
        }

        // Deleting bumps the epoch by the batch size and republishes.
        m.apply(Batch::new().delete(out.inserted[0])).unwrap();
        let snap2 = r.latest();
        assert_eq!(snap2.epoch(), 4);
        assert!(!snap2.contains_edge(out.inserted[0]));
        // The old snapshot is untouched (immutability).
        assert!(snap.contains_edge(out.inserted[0]));
        assert_eq!(snap.epoch(), 3);
    }

    #[test]
    fn point_queries_match_the_live_structure() {
        let mut m = DynamicMatching::with_seed(2);
        let r = m.enable_snapshots();
        m.insert_edges(&[vec![0, 1], vec![1, 2], vec![3, 4, 5], vec![6]]);
        let snap = r.latest();
        for v in 0..8u32 {
            assert_eq!(snap.matched_edge_of(v), m.matched_edge_of(v), "vertex {v}");
            assert_eq!(snap.is_matched(v), m.matched_edge_of(v).is_some());
        }
        // partner(): graph edge partners are symmetric; singleton has none.
        if let Some(p) = snap.partner(0) {
            assert_eq!(snap.partner(p), Some(0));
        }
        if snap.matched_edge_of(6).is_some() {
            assert_eq!(snap.partner(6), None, "singleton edge has no partner");
            assert_eq!(snap.partners(6), Some(&[6u32][..]));
        }
    }

    #[test]
    fn snapshots_of_equal_states_compare_equal() {
        // Same seed, same batches — captured snapshots are identical values.
        let build = || {
            let mut m = DynamicMatching::with_seed(9);
            m.apply(Batch::new().inserts([vec![0, 1], vec![1, 2], vec![0, 2]]))
                .unwrap();
            m
        };
        let (a, b) = (build(), build());
        assert_eq!(Snapshots::snapshot(&a), Snapshots::snapshot(&b));
    }

    #[test]
    fn legacy_wrappers_also_publish() {
        let mut m = DynamicMatching::with_seed(3);
        let r = m.enable_snapshots();
        let ids = m.insert_edges(&[vec![0, 1], vec![1, 2]]);
        assert_eq!(r.epoch(), 2);
        m.delete_edges(&ids);
        assert_eq!(r.epoch(), 4);
        assert_eq!(r.latest().num_edges(), 0);
    }

    #[test]
    fn enable_twice_shares_one_cell() {
        let mut m = DynamicMatching::with_seed(4);
        let r1 = m.enable_snapshots();
        m.insert_edges(&[vec![0, 1]]);
        let r2 = m.enable_snapshots();
        assert_eq!(r1.epoch(), r2.epoch());
        m.insert_edges(&[vec![2, 3]]);
        assert_eq!(r1.epoch(), 2);
        assert_eq!(r2.epoch(), 2);
    }

    #[test]
    fn wait_for_newer_times_out_at_the_current_epoch() {
        let mut m = DynamicMatching::with_seed(6);
        let r = m.enable_snapshots();
        m.insert_edges(&[vec![0, 1]]);
        // Nothing newer than epoch 1 will ever be published here: the call
        // must come back at the deadline with the epoch-1 snapshot.
        let snap = r.wait_for_newer(1, Duration::from_millis(10));
        assert_eq!(snap.epoch(), 1);
        // Asking about an older epoch returns immediately.
        let snap = r.wait_for_newer(0, Duration::from_secs(60));
        assert_eq!(snap.epoch(), 1);
    }

    #[test]
    fn wait_for_newer_wakes_on_publication() {
        let mut m = DynamicMatching::with_seed(7);
        let r = m.enable_snapshots();
        m.insert_edges(&[vec![0, 1]]);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| r.wait_for_newer(1, Duration::from_secs(60)));
            // Publish epoch 2 while the waiter blocks; it must observe it
            // long before the 60s deadline.
            std::thread::sleep(Duration::from_millis(20));
            m.insert_edges(&[vec![2, 3]]);
            let snap = waiter.join().unwrap();
            assert_eq!(snap.epoch(), 2);
            assert!(snap.is_matched(2));
        });
    }

    #[test]
    fn readers_on_other_threads_never_block_the_writer() {
        let mut m = DynamicMatching::with_seed(5);
        let r = m.enable_snapshots();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let r = r.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let snap = r.latest();
                        assert!(snap.epoch() >= last, "epochs must be monotone");
                        last = snap.epoch();
                        snap.check_consistency().unwrap();
                    }
                });
            }
            let mut ids = Vec::new();
            for wave in 0..20u32 {
                let out = m
                    .apply(Batch::new().inserts([
                        vec![wave * 3, wave * 3 + 1],
                        vec![wave * 3 + 1, wave * 3 + 2],
                    ]))
                    .unwrap();
                ids.extend(out.inserted);
                if ids.len() >= 4 {
                    let victims: Vec<EdgeId> = ids.drain(..2).collect();
                    m.apply(Batch::new().deletes(victims)).unwrap();
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(r.epoch(), Snapshots::epoch(&m));
    }

    // -- CowMap ------------------------------------------------------------

    #[test]
    fn cowmap_from_sorted_and_get() {
        let keys: Vec<u64> = vec![0, 1, 63, 64, 65, 4095, 4096, 1 << 20];
        let map = CowMap::from_sorted(keys.iter().map(|&k| (k, k * 10)));
        assert_eq!(map.len(), keys.len());
        for &k in &keys {
            assert_eq!(map.get(k), Some(&(k * 10)), "key {k}");
        }
        assert!(!map.contains(2));
        assert!(!map.contains(4097));
        let collected: Vec<u64> = map.iter().map(|(k, _)| k).collect();
        assert_eq!(collected, keys, "iter is ascending and complete");
    }

    #[test]
    fn cowmap_patch_is_canonical() {
        // Two maps holding the same content must compare equal regardless
        // of the patch history that produced them.
        let base = CowMap::from_sorted((0..200u64).map(|k| (k, ())));
        // Remove the tail chunk entirely, then everything past 100.
        let edits: Vec<(u64, Option<()>)> = (100..200u64).map(|k| (k, None)).collect();
        let shrunk = base.patch(&edits);
        let direct = CowMap::from_sorted((0..100u64).map(|k| (k, ())));
        assert_eq!(shrunk, direct);
        assert_eq!(shrunk.len(), 100);
        // Remove-of-absent and insert-of-present are tolerated no-ops.
        let noop = shrunk.patch(&[(50, Some(())), (5000, None)]);
        assert_eq!(noop, shrunk);
        assert_eq!(noop.len(), 100);
        // Growing into a brand-new group works and trims back down.
        let grown = shrunk.patch(&[(100_000, Some(()))]);
        assert!(grown.contains(100_000));
        assert_eq!(grown.patch(&[(100_000, None)]), shrunk);
    }

    #[test]
    fn cowmap_patch_shares_untouched_chunks() {
        let base = CowMap::from_sorted((0..10_000u64).map(|k| (k, k)));
        let patched = base.patch(&[(3, None), (9_999, Some(77))]);
        assert_eq!(patched.len(), 9_999);
        assert_eq!(patched.get(9_999), Some(&77));
        assert!(!patched.contains(3));
        // Base unchanged (persistence).
        assert_eq!(base.get(3), Some(&3));
        assert_eq!(base.get(9_999), Some(&9_999));
    }

    // -- SnapshotDelta -----------------------------------------------------

    fn delta(
        span: (u64, u64),
        inserted: &[u64],
        deleted: &[u64],
        matched: &[(u64, &[u32])],
        unmatched: &[u64],
    ) -> SnapshotDelta {
        SnapshotDelta {
            from_epoch: span.0,
            to_epoch: span.1,
            inserted: inserted.iter().map(|&e| EdgeId(e)).collect(),
            deleted: deleted.iter().map(|&e| EdgeId(e)).collect(),
            matched: matched
                .iter()
                .map(|&(e, vs)| (EdgeId(e), vs.to_vec()))
                .collect(),
            unmatched: unmatched.iter().map(|&e| EdgeId(e)).collect(),
        }
    }

    #[test]
    fn delta_merge_cancels_and_accumulates() {
        // Older inserts+matches edge 1; newer deletes it and matches edge 2.
        let older = delta((0, 2), &[1], &[], &[(1, &[0, 1])], &[]);
        let newer = delta((2, 4), &[2], &[1], &[(2, &[2, 3])], &[1]);
        let merged = SnapshotDelta::merge(older, &newer);
        assert_eq!(merged.from_epoch, 0);
        assert_eq!(merged.to_epoch, 4);
        // Edge 1 was never visible across the merged span's endpoints: its
        // insert is cancelled, its delete/unmatch retained (idempotent).
        assert_eq!(merged.inserted, vec![EdgeId(2)]);
        assert_eq!(merged.deleted, vec![EdgeId(1)]);
        assert_eq!(merged.matched, vec![(EdgeId(2), vec![2, 3])]);
        assert_eq!(merged.unmatched, vec![EdgeId(1)]);
    }

    #[test]
    fn delta_merge_newer_binding_wins_on_rebind() {
        // Edge 5 matched as {0,1} in the older span, rebound to {0,2} in
        // the newer (unmatched + matched in one delta).
        let older = delta((0, 1), &[5], &[], &[(5, &[0, 1])], &[]);
        let newer = delta((1, 2), &[], &[], &[(5, &[0, 2])], &[5]);
        let merged = SnapshotDelta::merge(older, &newer);
        assert_eq!(merged.matched, vec![(EdgeId(5), vec![0, 2])]);
        assert_eq!(merged.unmatched, vec![EdgeId(5)]);
    }

    #[test]
    fn merged_delta_applies_like_the_sequence() {
        // apply(merge(a, b)) == apply(b) ∘ apply(a) on a real snapshot.
        let mut m = DynamicMatching::with_seed(11);
        let r = m.enable_snapshots();
        let base = r.latest();
        let mut deltas: Vec<SnapshotDelta> = Vec::new();
        let out = m
            .apply(Batch::new().inserts([vec![0, 1], vec![1, 2], vec![2, 3]]))
            .unwrap();
        if let Changes::Delta { delta, .. } = r.changes_since(0) {
            deltas.push(delta);
        }
        m.apply(Batch::new().delete(out.inserted[1])).unwrap();
        if let Changes::Delta { delta, .. } = r.changes_since(3) {
            deltas.push(delta);
        }
        assert_eq!(deltas.len(), 2, "both publications produced deltas");
        let stepped = base.apply_delta(&deltas[0]).apply_delta(&deltas[1]);
        let merged = SnapshotDelta::merge(deltas[0].clone(), &deltas[1]);
        let jumped = base.apply_delta(&merged);
        assert_eq!(stepped, jumped);
        assert_eq!(jumped, *r.latest());
    }

    // -- changes_since -----------------------------------------------------

    #[test]
    fn changes_since_reports_up_to_date_delta_and_resync() {
        let mut m = DynamicMatching::with_seed(12);
        let r = m.enable_snapshots();
        assert!(matches!(r.changes_since(0), Changes::UpToDate));

        m.insert_edges(&[vec![0, 1]]);
        m.insert_edges(&[vec![2, 3]]);
        match r.changes_since(0) {
            Changes::Delta { to_epoch, delta } => {
                assert_eq!(to_epoch, 2);
                assert_eq!(delta.from_epoch, 0);
                assert_eq!(delta.to_epoch, 2);
                assert_eq!(delta.inserted.len(), 2);
            }
            other => panic!("expected merged delta, got {other:?}"),
        }
        match r.changes_since(1) {
            Changes::Delta { to_epoch, delta } => {
                assert_eq!(to_epoch, 2);
                assert_eq!(delta.inserted.len(), 1);
            }
            other => panic!("expected single delta, got {other:?}"),
        }
        assert!(matches!(r.changes_since(2), Changes::UpToDate));
        // An epoch that never was a publication boundary → resync.
        match r.changes_since(7) {
            Changes::Resync(snap) => assert_eq!(snap.epoch(), 2),
            other => panic!("expected resync, got {other:?}"),
        }
    }

    #[test]
    fn changes_since_resyncs_past_the_ring_capacity() {
        let mut m = DynamicMatching::with_seed(13);
        let r = m.enable_snapshots();
        for i in 0..(DELTA_RING_CAP as u32 + 8) {
            m.insert_edges(&[vec![2 * i, 2 * i + 1]]);
        }
        // Epoch 0 has rolled out of the ring.
        assert!(matches!(r.changes_since(0), Changes::Resync(_)));
        // The most recent boundary is still served incrementally.
        let latest = r.epoch();
        assert!(matches!(r.changes_since(latest - 1), Changes::Delta { .. }));
    }

    #[test]
    fn apply_delta_tracks_capture_across_random_churn() {
        let mut m = DynamicMatching::with_seed(14);
        let r = m.enable_snapshots();
        let mut patched = (*r.latest()).clone();
        let mut ids: Vec<EdgeId> = Vec::new();
        for wave in 0..30u32 {
            let out = m
                .apply(Batch::new().inserts([
                    vec![wave % 7, wave % 11 + 7],
                    vec![wave % 5 + 18, wave % 3 + 23],
                ]))
                .unwrap();
            ids.extend(out.inserted);
            if wave % 3 == 2 && ids.len() >= 3 {
                let victims: Vec<EdgeId> = ids.drain(..3).collect();
                m.apply(Batch::new().deletes(victims)).unwrap();
            }
            // Catch up via deltas only; must exactly track capture.
            match r.changes_since(patched.epoch()) {
                Changes::Delta { delta, .. } => patched = patched.apply_delta(&delta),
                Changes::UpToDate => {}
                Changes::Resync(snap) => patched = (*snap).clone(),
            }
            assert_eq!(patched, *r.latest(), "wave {wave}");
            patched.check_consistency().unwrap();
        }
    }
}
