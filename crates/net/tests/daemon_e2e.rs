//! End-to-end loopback tests for the daemon: real TCP connections against
//! a real [`Daemon`], covering read-your-writes over the wire, fault
//! isolation (one hostile client never takes the daemon down), admission
//! control under tight limits, epoch subscriptions, and graceful drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use pbdmm_graph::wal::WalMeta;
use pbdmm_graph::Update;
use pbdmm_matching::DynamicMatching;
use pbdmm_net::client::{Client, ClientError, Mirror};
use pbdmm_net::daemon::{Daemon, DaemonConfig};
use pbdmm_net::load::{run_load, LoadConfig};
use pbdmm_net::proto::{self, ErrorCode, Request, Response, UpdateResult};
use pbdmm_service::WalConfig;

fn start(
    cfg: DaemonConfig,
) -> (
    std::net::SocketAddr,
    pbdmm_net::StopHandle,
    std::thread::JoinHandle<pbdmm_net::DaemonReport>,
) {
    let daemon = Daemon::start(DynamicMatching::with_seed(7), cfg).unwrap();
    let addr = daemon.local_addr();
    let stop = daemon.stop_handle();
    let join = std::thread::spawn(move || daemon.run());
    (addr, stop, join)
}

#[test]
fn submits_queries_and_read_your_writes_over_the_wire() {
    let (addr, stop, join) = start(DaemonConfig::default());
    let mut c = Client::connect(addr).unwrap();

    let done = c
        .submit_updates(vec![
            Update::Insert(vec![0, 1]),
            Update::Insert(vec![2, 3]),
            Update::Insert(vec![1, 2]),
        ])
        .unwrap();
    assert_eq!(done.results.len(), 3);
    assert!(done.epoch >= 3);
    let inserted: Vec<u64> = done
        .results
        .iter()
        .filter_map(|r| match r {
            UpdateResult::Inserted { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(inserted.len(), 3);

    // Read your writes: a query after the completion can never observe a
    // snapshot older than the completion's epoch.
    let q = c.point_query(0).unwrap();
    assert!(
        q.epoch >= done.epoch,
        "query epoch {} < completion {}",
        q.epoch,
        done.epoch
    );
    assert!(q.matched_edge.is_some() || q.partners.is_empty());

    // Deleting our own committed ids succeeds; a bogus id is rejected
    // per-update without poisoning the batch.
    let done = c
        .submit_updates(vec![
            Update::Delete(pbdmm_graph::EdgeId(inserted[0])),
            Update::Delete(pbdmm_graph::EdgeId(9_999)),
        ])
        .unwrap();
    assert!(matches!(done.results[0], UpdateResult::Deleted { .. }));
    assert!(matches!(
        done.results[1],
        UpdateResult::Rejected {
            code: ErrorCode::UnknownEdge
        }
    ));

    stop.stop();
    let report = join.join().unwrap();
    assert_eq!(report.structure.num_edges(), 2);
    assert_eq!(report.wire.protocol_errors, 0);
}

#[test]
fn hostile_client_is_isolated_from_well_behaved_ones() {
    let (addr, stop, join) = start(DaemonConfig::default());

    // A well-behaved client, connected before the attacks.
    let mut good = Client::connect(addr).unwrap();
    good.submit_updates(vec![Update::Insert(vec![0, 1])])
        .unwrap();

    // Hostile 1: not a pbdmm peer at all (HTTP). The daemon answers its
    // handshake slot with a structured Error frame and closes only that
    // connection.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        proto::read_handshake(&mut s).unwrap(); // daemon still greets first
        let mut body = Vec::new();
        proto::read_frame(&mut s, proto::MAX_FRAME, &mut body)
            .unwrap()
            .unwrap();
        match Response::decode(&body).unwrap() {
            Response::Error { req_id, code, .. } => {
                assert_eq!(req_id, 0);
                assert_eq!(code, ErrorCode::Protocol);
            }
            r => panic!("expected protocol error, got {r:?}"),
        }
        // ... and the stream is closed after it.
        let mut rest = Vec::new();
        assert_eq!(s.read_to_end(&mut rest).unwrap(), 0);
    }

    // Hostile 2: valid handshake, then a frame with an unknown opcode.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        proto::write_handshake(&mut s).unwrap();
        proto::read_handshake(&mut s).unwrap();
        proto::write_frame(&mut s, &[0x7F, 1, 2, 3]).unwrap();
        let mut body = Vec::new();
        proto::read_frame(&mut s, proto::MAX_FRAME, &mut body)
            .unwrap()
            .unwrap();
        assert!(matches!(
            Response::decode(&body).unwrap(),
            Response::Error {
                code: ErrorCode::Protocol,
                ..
            }
        ));
    }

    // Hostile 3: a declared frame length beyond the cap.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        proto::write_handshake(&mut s).unwrap();
        proto::read_handshake(&mut s).unwrap();
        s.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        let mut body = Vec::new();
        proto::read_frame(&mut s, proto::MAX_FRAME, &mut body)
            .unwrap()
            .unwrap();
        assert!(matches!(
            Response::decode(&body).unwrap(),
            Response::Error {
                code: ErrorCode::Protocol,
                ..
            }
        ));
    }

    // The daemon and its well-behaved client kept running throughout.
    let done = good
        .submit_updates(vec![Update::Insert(vec![2, 3])])
        .unwrap();
    assert!(matches!(done.results[0], UpdateResult::Inserted { .. }));
    let stats = good.stats().unwrap();
    assert_eq!(stats.protocol_errors, 3);

    stop.stop();
    let report = join.join().unwrap();
    assert_eq!(report.wire.protocol_errors, 3);
    assert_eq!(report.structure.num_edges(), 2);
}

#[test]
fn oversized_batches_are_refused_while_admitted_traffic_completes() {
    let cfg = DaemonConfig {
        max_inflight: 4,
        ..DaemonConfig::default()
    };
    let (addr, stop, join) = start(cfg);

    let mut c = Client::connect(addr).unwrap();
    // A batch beyond the in-flight window draws Overloaded, not a hang and
    // not an unbounded queue.
    let big: Vec<Update> = (0..8)
        .map(|i| Update::Insert(vec![2 * i, 2 * i + 1]))
        .collect();
    match c.submit_updates(big) {
        Err(ClientError::Server {
            code: ErrorCode::Overloaded,
            ..
        }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // The connection survives the refusal, and admitted work completes.
    let done = c.submit_updates(vec![Update::Insert(vec![0, 1])]).unwrap();
    assert!(matches!(done.results[0], UpdateResult::Inserted { .. }));
    let stats = c.stats().unwrap();
    assert_eq!(stats.overloaded, 1);
    assert_eq!(stats.num_edges, 1);

    stop.stop();
    let report = join.join().unwrap();
    assert_eq!(report.wire.overloaded, 1);
    assert_eq!(report.structure.num_edges(), 1);
}

#[test]
fn connection_cap_refuses_politely_and_frees_slots() {
    let cfg = DaemonConfig {
        max_connections: 1,
        ..DaemonConfig::default()
    };
    let (addr, stop, join) = start(cfg);

    let mut first = Client::connect(addr).unwrap();
    first
        .submit_updates(vec![Update::Insert(vec![0, 1])])
        .unwrap();

    // Second connection: greeted, refused with Overloaded, closed.
    let mut second = Client::connect(addr).unwrap();
    match second.stats() {
        Err(ClientError::Server {
            code: ErrorCode::Overloaded,
            ..
        }) => {}
        other => panic!("expected Overloaded refusal, got {other:?}"),
    }
    drop(second); // let the daemon's refusal thread finish its linger

    // Dropping the first frees its slot for a new connection.
    drop(first);
    let mut attempts = 0;
    let mut third = loop {
        // The slot frees when the daemon notices the old connection left;
        // retry briefly rather than racing it.
        let mut c = Client::connect(addr).unwrap();
        match c.stats() {
            Ok(_) => break c,
            Err(ClientError::Server {
                code: ErrorCode::Overloaded,
                ..
            }) => {
                attempts += 1;
                assert!(attempts < 1000, "slot never freed after disconnect");
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    };
    let done = third
        .submit_updates(vec![Update::Insert(vec![2, 3])])
        .unwrap();
    assert!(matches!(done.results[0], UpdateResult::Inserted { .. }));

    stop.stop();
    let report = join.join().unwrap();
    assert_eq!(report.structure.num_edges(), 2);
    assert!(report.wire.overloaded >= 1);
}

#[test]
fn epoch_subscription_streams_publications() {
    let (addr, stop, join) = start(DaemonConfig::default());

    let mut sub = Client::connect(addr).unwrap();
    sub.subscribe(0).unwrap();

    let mut writer = Client::connect(addr).unwrap();
    let done = writer
        .submit_updates(vec![Update::Insert(vec![0, 1])])
        .unwrap();

    // The subscriber sees an event at (or beyond) the writer's epoch.
    sub.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut last = 0;
    while last < done.epoch {
        match sub.recv_response().unwrap() {
            Some(Response::EpochEvent { epoch }) => {
                assert!(epoch > last, "events must be strictly increasing");
                last = epoch;
            }
            Some(r) => panic!("unexpected frame {r:?}"),
            None => panic!("daemon closed the subscription early"),
        }
    }

    stop.stop();
    join.join().unwrap();
}

#[test]
fn drain_refuses_new_work_and_reports_final_stats() {
    let (addr, _stop, join) = start(DaemonConfig::default());

    let mut c = Client::connect(addr).unwrap();
    c.submit_updates(vec![Update::Insert(vec![0, 1])]).unwrap();

    // The shutdown goodbye is a stats frame with the drain flag up.
    let stats = c.shutdown().unwrap();
    assert_eq!(stats.draining, 1);
    assert_eq!(stats.epoch, 1);

    // New work on this (or any) connection is refused while draining.
    let req_id = c.next_req_id();
    if c.send(&Request::SubmitBatch {
        req_id,
        updates: vec![Update::Insert(vec![2, 3])],
    })
    .is_ok()
    {
        match c.recv_for(req_id) {
            Err(ClientError::Server {
                code: ErrorCode::Draining,
                ..
            }) => {}
            // The drain may close the stream before answering — that is a
            // legal outcome of racing a shutdown.
            Err(ClientError::Frame(_)) => {}
            other => panic!("expected Draining or a closed stream, got {other:?}"),
        }
    }

    let report = join.join().unwrap();
    assert_eq!(report.structure.num_edges(), 1);
    assert_eq!(report.service.updates, 1);
}

#[test]
fn load_generator_runs_clean_against_the_daemon() {
    let (addr, stop, join) = start(DaemonConfig::default());
    let cfg = LoadConfig {
        connections: 4,
        per_connection: 400,
        queries_per_window: 4,
        seed: 7,
        shards: 1,
    };
    let report = run_load(addr, &cfg).unwrap();
    assert_eq!(report.updates, 1600);
    assert_eq!(report.failed, 0, "read-your-writes must hold over the wire");
    assert_eq!(report.protocol_errors, 0);
    assert!(report.reads > 0);

    stop.stop();
    let daemon_report = join.join().unwrap();
    assert_eq!(daemon_report.service.updates, 1600);
    assert_eq!(daemon_report.wire.protocol_errors, 0);
    pbdmm_matching::verify::check_invariants(&daemon_report.structure).unwrap();
}

#[test]
fn delta_subscription_mirrors_server_state() {
    let (addr, stop, join) = start(DaemonConfig::default());

    let mut sub = Client::connect(addr).unwrap();
    sub.subscribe_deltas(0).unwrap();
    sub.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Churn: inserts, then a delete, on a separate connection.
    let mut writer = Client::connect(addr).unwrap();
    let done = writer
        .submit_updates(vec![
            Update::Insert(vec![0, 1]),
            Update::Insert(vec![2, 3]),
            Update::Insert(vec![1, 2]),
            Update::Insert(vec![4, 5]),
        ])
        .unwrap();
    let inserted: Vec<u64> = done
        .results
        .iter()
        .filter_map(|r| match r {
            UpdateResult::Inserted { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(inserted.len(), 4);
    let done2 = writer
        .submit_updates(vec![Update::Delete(pbdmm_graph::EdgeId(inserted[3]))])
        .unwrap();
    let final_epoch = done2.epoch;

    // Fold the delta stream into a client-side mirror until it catches up.
    let mut mirror = Mirror::default();
    while mirror.epoch < final_epoch {
        match sub.recv_response().unwrap() {
            Some(Response::DeltaEvent { resync, delta }) => {
                assert!(delta.to_epoch > mirror.epoch, "events advance the mirror");
                mirror.apply(resync, &delta);
            }
            Some(r) => panic!("unexpected frame {r:?}"),
            None => panic!("daemon closed the subscription early"),
        }
    }

    stop.stop();
    let report = join.join().unwrap();

    // The mirror converged to the daemon's exact final state.
    let live: std::collections::BTreeSet<u64> = report
        .structure
        .structure()
        .edges
        .ids()
        .iter()
        .map(|e| e.raw())
        .collect();
    assert_eq!(mirror.live, live, "mirror live set == served live set");
    let mut matched: Vec<u64> = report
        .structure
        .matching()
        .iter()
        .map(|e| e.raw())
        .collect();
    matched.sort_unstable();
    let mirrored: Vec<u64> = mirror.matched.keys().copied().collect();
    assert_eq!(mirrored, matched, "mirror matching == served matching");
    // Matched vertex sets are the real edge vertex sets.
    for (id, vs) in &mirror.matched {
        let rec = &report.structure.structure().edges[pbdmm_graph::EdgeId(*id)];
        assert_eq!(&rec.vertices, vs);
    }
}

#[test]
fn daemon_recovers_from_segmented_wal_and_resumes() {
    let dir = std::env::temp_dir().join("pbdmm_daemon_recover_e2e");
    let _ = std::fs::remove_dir_all(&dir);
    let mut wal = WalConfig::dir(
        &dir,
        WalMeta {
            structure: "matching".into(),
            seed: 7,
            ids_recycling: false,
        },
    );
    wal.checkpoint_every = Some(4);
    let cfg = DaemonConfig {
        wal: Some(wal),
        ..DaemonConfig::default()
    };

    // Run 1: empty directory — recover_and_start begins fresh.
    let (daemon, info) = Daemon::recover_and_start(cfg.clone()).unwrap();
    assert_eq!(info.batches, 0);
    let addr = daemon.local_addr();
    let stop = daemon.stop_handle();
    let join = std::thread::spawn(move || daemon.run());
    let mut c = Client::connect(addr).unwrap();
    let done = c
        .submit_updates(
            (0..10)
                .map(|i| Update::Insert(vec![2 * i, 2 * i + 1]))
                .collect(),
        )
        .unwrap();
    let ids: Vec<u64> = done
        .results
        .iter()
        .filter_map(|r| match r {
            UpdateResult::Inserted { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(ids.len(), 10);
    let before = c.stats().unwrap();
    stop.stop();
    drop(c);
    let run1 = join.join().unwrap();
    assert_eq!(run1.service.updates, 10);

    // Run 2: same config, new process lifecycle — recovery resumes the
    // log (checkpoint + tail segments) and serves the identical state.
    let (daemon, info) = Daemon::recover_and_start(cfg.clone()).unwrap();
    assert_eq!(info.batches, run1.service.wal_batches);
    let addr = daemon.local_addr();
    let stop = daemon.stop_handle();
    let join = std::thread::spawn(move || daemon.run());
    let mut c = Client::connect(addr).unwrap();
    let after = c.stats().unwrap();
    assert_eq!(after.epoch, 10, "recovered epochs resume at the log's end");
    assert_eq!(after.num_edges, before.num_edges);
    assert_eq!(after.matching_size, before.matching_size);

    // Recovered ids are live: deleting one over the wire succeeds.
    let done = c
        .submit_updates(vec![Update::Delete(pbdmm_graph::EdgeId(ids[0]))])
        .unwrap();
    assert!(matches!(done.results[0], UpdateResult::Deleted { .. }));
    stop.stop();
    drop(c);
    let run2 = join.join().unwrap();
    assert_eq!(run2.structure.num_edges(), before.num_edges as usize - 1);
    pbdmm_matching::verify::check_invariants(&run2.structure).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
