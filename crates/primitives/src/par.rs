//! Fork-join helpers realizing the binary-forking model on rayon.
//!
//! Every parallel primitive in this crate routes through these helpers so
//! that (a) small inputs stay sequential (grain control — parallelism below a
//! few thousand elements costs more than it gains) and (b) the whole
//! workspace can be forced sequential for deterministic debugging via
//! [`set_sequential`].

use std::sync::atomic::{AtomicBool, Ordering};

use rayon::prelude::*;

/// Below this input size parallel primitives fall back to their sequential
/// implementations.
pub const GRAIN: usize = 4096;

static FORCE_SEQUENTIAL: AtomicBool = AtomicBool::new(false);

/// Force all primitives in this crate to run sequentially (for debugging and
/// for the sequential baselines in the benchmark harness). Global and sticky.
pub fn set_sequential(seq: bool) {
    FORCE_SEQUENTIAL.store(seq, Ordering::SeqCst);
}

/// Whether primitives are currently forced sequential.
pub fn is_sequential() -> bool {
    FORCE_SEQUENTIAL.load(Ordering::Relaxed)
}

/// Should a primitive over `n` elements run in parallel?
#[inline]
pub fn should_par(n: usize) -> bool {
    n >= GRAIN && !is_sequential() && rayon::current_num_threads() > 1
}

/// Parallel map with grain control: sequential below [`GRAIN`].
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync + Send,
{
    if should_par(items.len()) {
        items.par_iter().map(f).collect()
    } else {
        items.iter().map(f).collect()
    }
}

/// Parallel indexed map: `f(i, &items[i])`.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync + Send,
{
    if should_par(items.len()) {
        items.par_iter().enumerate().map(|(i, t)| f(i, t)).collect()
    } else {
        items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
    }
}

/// Parallel for-each over mutable elements.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync + Send,
{
    if should_par(items.len()) {
        items.par_iter_mut().for_each(f);
    } else {
        items.iter_mut().for_each(f);
    }
}

/// Parallel flat-map (order-preserving).
pub fn par_flat_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Vec<U> + Sync + Send,
{
    if should_par(items.len()) {
        items.par_iter().flat_map_iter(|t| f(t).into_iter()).collect()
    } else {
        items.iter().flat_map(|t| f(t).into_iter()).collect()
    }
}

/// Parallel filter-map (order-preserving).
pub fn par_filter_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Option<U> + Sync + Send,
{
    if should_par(items.len()) {
        items.par_iter().filter_map(f).collect()
    } else {
        items.iter().filter_map(f).collect()
    }
}

/// Binary fork: run two closures as parallel tasks (rayon `join`), the
/// primitive operation of the binary-forking model.
#[inline]
pub fn fork2<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if is_sequential() {
        (a(), b())
    } else {
        rayon::join(a, b)
    }
}

/// Run `f(i)` for all `i in 0..n` in parallel, collecting results in order.
pub fn par_tabulate<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync + Send,
{
    if should_par(n) {
        (0..n).into_par_iter().map(f).collect()
    } else {
        (0..n).map(f).collect()
    }
}

/// Apply keyed update groups to disjoint elements of `items` in parallel.
///
/// `groups` carries `(index, payload)` pairs whose indices **must be unique**
/// (e.g. the output of [`crate::semisort::group_by`]) and in range; each
/// payload is applied to its element by `f`. This realizes the paper's
/// "groupBy, then update each target set as a batch, targets in parallel"
/// pattern over dense per-vertex tables.
///
/// # Panics
/// Debug builds assert index uniqueness and range.
pub fn par_apply_disjoint<T, G, F>(items: &mut [T], groups: Vec<(usize, G)>, f: F)
where
    T: Send,
    G: Send,
    F: Fn(&mut T, G) + Sync + Send,
{
    #[cfg(debug_assertions)]
    {
        let mut seen = std::collections::HashSet::new();
        for (i, _) in &groups {
            assert!(*i < items.len(), "group index {i} out of range");
            assert!(seen.insert(*i), "duplicate group index {i}");
        }
    }
    if !should_par(groups.len()) {
        for (i, g) in groups {
            f(&mut items[i], g);
        }
        return;
    }
    struct Ptr<T>(*mut T);
    unsafe impl<T> Send for Ptr<T> {}
    unsafe impl<T> Sync for Ptr<T> {}
    impl<T> Ptr<T> {
        fn get(&self) -> *mut T {
            self.0
        }
    }
    let base = Ptr(items.as_mut_ptr());
    groups.into_par_iter().for_each(|(i, g)| {
        // SAFETY: indices are unique (contract), so each element is accessed
        // by exactly one task.
        let item = unsafe { &mut *base.get().add(i) };
        f(item, g);
    });
}

/// Sort a slice, in parallel above the grain size.
pub fn par_sort<T: Ord + Send>(items: &mut [T]) {
    if should_par(items.len()) {
        items.par_sort_unstable();
    } else {
        items.sort_unstable();
    }
}

/// Sort by key, in parallel above the grain size.
pub fn par_sort_by_key<T, K, F>(items: &mut [T], f: F)
where
    T: Send,
    K: Ord + Send,
    F: Fn(&T) -> K + Sync,
{
    if should_par(items.len()) {
        items.par_sort_unstable_by_key(f);
    } else {
        items.sort_unstable_by_key(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled = par_map(&xs, |x| x * 2);
        assert_eq!(doubled, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_passes_indices() {
        let xs = vec![10u64; 100];
        let ys = par_map_indexed(&xs, |i, x| i as u64 + x);
        assert_eq!(ys[0], 10);
        assert_eq!(ys[99], 109);
    }

    #[test]
    fn par_flat_map_preserves_order() {
        let xs: Vec<u32> = (0..5000).collect();
        let ys = par_flat_map(&xs, |&x| vec![x, x]);
        for (i, pair) in ys.chunks(2).enumerate() {
            assert_eq!(pair, [i as u32, i as u32]);
        }
    }

    #[test]
    fn par_filter_map_filters() {
        let xs: Vec<u32> = (0..10_000).collect();
        let evens = par_filter_map(&xs, |&x| (x % 2 == 0).then_some(x));
        assert_eq!(evens.len(), 5000);
        assert!(evens.iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn fork2_returns_both() {
        let (a, b) = fork2(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_tabulate_is_identity_indexed() {
        let v = par_tabulate(8192, |i| i);
        assert_eq!(v.len(), 8192);
        assert!(v.iter().enumerate().all(|(i, &x)| i == x));
    }

    #[test]
    fn par_sort_sorts() {
        let mut v: Vec<i64> = (0..10_000).map(|i| (i * 7919) % 10_000).collect();
        par_sort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn par_apply_disjoint_applies_each_once() {
        let mut items = vec![0u64; 10_000];
        let groups: Vec<(usize, u64)> = (0..10_000).map(|i| (i, i as u64 + 1)).collect();
        par_apply_disjoint(&mut items, groups, |slot, g| *slot += g);
        assert!(items.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    #[should_panic(expected = "duplicate group index")]
    #[cfg(debug_assertions)]
    fn par_apply_disjoint_rejects_duplicates() {
        let mut items = vec![0u64; 4];
        par_apply_disjoint(&mut items, vec![(1, 1u64), (1, 2u64)], |s, g| *s += g);
    }

    #[test]
    fn sequential_mode_round_trips() {
        set_sequential(true);
        assert!(is_sequential());
        let xs: Vec<u64> = (0..10_000).collect();
        assert_eq!(par_map(&xs, |x| x + 1)[9999], 10_000);
        set_sequential(false);
        assert!(!is_sequential());
    }
}
