//! Oblivious vs adaptive adversaries: where the guarantee lives.
//!
//! The paper's bounds hold against an *oblivious* adversary — one that fixes
//! the update stream before the algorithm draws its coins. This example
//! makes that boundary concrete by deleting the same star-like graph two
//! ways:
//!
//! * **oblivious**: delete edges in a random order chosen up front. The
//!   adversary doesn't know which sampled edge got matched, so in
//!   expectation it burns half a sample space before hitting a match —
//!   measured payment Φ stays ≤ 2.
//! * **adaptive** (what the guarantee does *not* cover): peek at the
//!   structure and always delete the currently matched edge. Every deletion
//!   is a matched deletion; the measured payment per delete tracks the
//!   whole remaining sample space.
//!
//! ```text
//! cargo run --release --example oblivious_vs_adaptive
//! ```

use pbdmm::graph::gen;
use pbdmm::primitives::rng::SplitMix64;
use pbdmm::{Batch, DynamicMatching};

const LEAVES: usize = 4096;

fn main() {
    let g = gen::star(LEAVES + 1);

    // --- Oblivious: a deletion order fixed before the matcher's coins. ----
    let mut matching = DynamicMatching::with_seed(111);
    let ids = matching
        .apply(Batch::new().inserts(g.edges.iter().cloned()))
        .expect("insert batch")
        .inserted;
    let mut order: Vec<usize> = (0..ids.len()).collect();
    let mut adversary_rng = SplitMix64::new(999); // independent of seed 111
    for i in (1..order.len()).rev() {
        let j = adversary_rng.bounded(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    for chunk in order.chunks(64) {
        let batch = Batch::new().deletes(chunk.iter().map(|&i| ids[i]));
        matching.apply(batch).expect("oblivious delete batch");
    }
    let oblivious_phi = matching.stats().mean_payment();
    let oblivious_work = matching.meter().work() as f64 / matching.stats().total_updates() as f64;

    // --- Adaptive: always kill the matched edge (void where prohibited). --
    let mut matching = DynamicMatching::with_seed(111);
    let ids = matching
        .apply(Batch::new().inserts(g.edges.iter().cloned()))
        .expect("insert batch")
        .inserted;
    let mut live: Vec<_> = ids.clone();
    while !live.is_empty() {
        // Peeking at `is_matched` makes this adversary adaptive: the choice
        // below depends on the algorithm's random coins.
        let victim = live
            .iter()
            .copied()
            .find(|&e| matching.is_matched(e))
            .expect("maximal matching on a nonempty star has a match");
        matching
            .apply(Batch::new().delete(victim))
            .expect("adaptive delete");
        live.retain(|&e| e != victim);
    }
    let adaptive_phi = matching.stats().mean_payment();
    let adaptive_work = matching.meter().work() as f64 / matching.stats().total_updates() as f64;

    println!("star with {LEAVES} leaves, fully deleted twice:\n");
    println!("                     mean payment phi   model work/update");
    println!("oblivious (random)        {oblivious_phi:>8.3}           {oblivious_work:>8.2}");
    println!("adaptive (hunt match)     {adaptive_phi:>8.3}           {adaptive_work:>8.2}");
    println!();
    println!("The paper's Lemma 3.3/5.8 bound (E[phi] <= 2) applies to the first");
    println!("row only. The adaptive adversary deletes a matched edge every time,");
    println!("so each deletion pays the full remaining sample space — this is the");
    println!("attack the oblivious model (and every prior dynamic matching bound");
    println!("in this line of work) explicitly excludes.");
    assert!(oblivious_phi <= 2.0 + 0.5);
    assert!(adaptive_phi > oblivious_phi);
}
