//! Plain-text hyperedge-list IO.
//!
//! Format: one edge per line, whitespace-separated vertex ids (any count ≥ 1
//! — rank-2 lines are ordinary graph edges); `#` starts a comment; blank
//! lines ignored. Vertices are non-negative integers; `n` is inferred as
//! max id + 1 unless a `# vertices: N` header raises it.
//!
//! ```text
//! # a triangle and one rank-3 hyperedge
//! 0 1
//! 1 2
//! 0 2
//! 2 3 4
//! ```

use std::io::{BufRead, Write};

use crate::edge::normalize_vertices;
use crate::hypergraph::Hypergraph;

/// Parse a hypergraph from reader contents. Lines are normalized (sorted,
/// deduplicated vertices); malformed lines produce an error naming the line.
pub fn read_hypergraph<R: BufRead>(reader: R) -> Result<Hypergraph, String> {
    let mut edges = Vec::new();
    let mut declared_n: usize = 0;
    let mut max_v: usize = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: io error: {e}", lineno + 1))?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            // Comment-only line: a `vertices:` header may follow the `#`
            // with any amount of whitespace (`# vertices: N`, `#vertices:N`,
            // `#   vertices: N` are all accepted).
            if let Some(comment) = line.trim().strip_prefix('#') {
                if let Some(rest) = comment.trim_start().strip_prefix("vertices:") {
                    declared_n = rest
                        .trim()
                        .parse::<usize>()
                        .map_err(|e| format!("line {}: bad vertex count: {e}", lineno + 1))?;
                }
            }
            continue;
        }
        let mut vs = Vec::new();
        for tok in content.split_whitespace() {
            let v: u32 = tok
                .parse()
                .map_err(|e| format!("line {}: bad vertex id {tok:?}: {e}", lineno + 1))?;
            max_v = max_v.max(v as usize + 1);
            vs.push(v);
        }
        let vs =
            normalize_vertices(vs).ok_or_else(|| format!("line {}: empty edge", lineno + 1))?;
        edges.push(vs);
    }
    Hypergraph::new(declared_n.max(max_v), edges)
}

/// Parse a hypergraph from a file path.
pub fn read_hypergraph_file(path: &std::path::Path) -> Result<Hypergraph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
    read_hypergraph(std::io::BufReader::new(file))
}

/// Write a hypergraph in the edge-list format (with a vertex-count header,
/// so isolated trailing vertices round-trip).
pub fn write_hypergraph<W: Write>(mut w: W, g: &Hypergraph) -> std::io::Result<()> {
    writeln!(w, "# vertices: {}", g.n)?;
    for e in &g.edges {
        let line: Vec<String> = e.iter().map(|v| v.to_string()).collect();
        writeln!(w, "{}", line.join(" "))?;
    }
    Ok(())
}

/// Write a hypergraph to a file path.
pub fn write_hypergraph_file(path: &std::path::Path, g: &Hypergraph) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
    write_hypergraph(std::io::BufWriter::new(file), g).map_err(|e| format!("write {path:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Hypergraph, String> {
        read_hypergraph(std::io::Cursor::new(s))
    }

    #[test]
    fn parses_simple_graph() {
        let g = parse("0 1\n1 2\n# comment\n\n0 2\n").unwrap();
        assert_eq!(g.n, 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.rank(), 2);
    }

    #[test]
    fn parses_hyperedges_and_normalizes() {
        let g = parse("3 1 2 1\n0 5\n").unwrap();
        assert_eq!(g.edges[0], vec![1, 2, 3]);
        assert_eq!(g.n, 6);
        assert_eq!(g.rank(), 3);
    }

    #[test]
    fn vertex_count_header_raises_n() {
        let g = parse("# vertices: 100\n0 1\n").unwrap();
        assert_eq!(g.n, 100);
    }

    #[test]
    fn vertex_count_header_accepts_both_spellings() {
        // Canonical spelling with a space after `#`.
        let g = parse("# vertices: 50\n0 1\n").unwrap();
        assert_eq!(g.n, 50);
        // No space after `#` (common hand-written form).
        let g = parse("#vertices: 60\n0 1\n").unwrap();
        assert_eq!(g.n, 60);
        // Arbitrary whitespace after `#` and around the count.
        let g = parse("#   vertices:   70  \n0 1\n").unwrap();
        assert_eq!(g.n, 70);
        // A malformed count is still an error, whatever the spelling.
        assert!(parse("#vertices: x\n0 1\n").is_err());
    }

    #[test]
    fn inline_comments_stripped() {
        let g = parse("0 1 # the first edge\n").unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("0 x\n").is_err());
        assert!(parse("0 -1\n").is_err());
    }

    #[test]
    fn roundtrips() {
        let g = crate::gen::random_hypergraph(40, 100, 4, 9);
        let mut buf = Vec::new();
        write_hypergraph(&mut buf, &g).unwrap();
        let g2 = read_hypergraph(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g.n, g2.n);
        assert_eq!(g.edges, g2.edges);
    }

    #[test]
    fn file_roundtrip() {
        let g = crate::gen::erdos_renyi(20, 50, 3);
        let dir = std::env::temp_dir().join("pbdmm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.hgr");
        write_hypergraph_file(&path, &g).unwrap();
        let g2 = read_hypergraph_file(&path).unwrap();
        assert_eq!(g.edges, g2.edges);
        std::fs::remove_file(&path).ok();
    }
}
