//! A persistent work-stealing thread pool for the fork-join primitives.
//!
//! The PR 1 layer realized every `par_*` call with `std::thread::scope`,
//! paying a ~60µs spawn/join round-trip per invocation — the dominant
//! scheduling overhead on the hot paths (`scan`, `semisort`, settlement).
//! This module replaces it with a pool in the Chase–Lev mold, std-only:
//!
//! * **persistent workers** parked on a condvar, woken in ~1µs;
//! * a **per-worker deque** each (owner pops LIFO for locality, thieves
//!   steal FIFO so they take the largest unsplit ranges);
//! * a **global injector** for submissions from non-worker threads;
//! * **lazy binary splitting**: a job over `0..n` enters as one task;
//!   whoever executes a task peels off and publishes its upper half until
//!   the range reaches the job's grain, so splitting happens exactly as
//!   deep as idle workers demand;
//! * **cooperative blocking**: a thread waiting on a job (including a
//!   worker inside a *nested* fork-join) executes pool tasks while it
//!   waits, which makes nested `par_for` deadlock-free.
//!
//! Pools are handed around as `Arc<ParPool>`. [`current`] resolves the pool
//! a primitive should run on: an [`ParPool::install`] scope first, then the
//! executing worker's own pool, then the process-global default (sized by
//! [`crate::par::num_threads`], rebuilt when the cap changes).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock, Weak};
use std::time::Duration;

/// How long an idle worker parks before re-scanning the queues. The wakeup
/// protocol is race-free (pushes notify under the idle lock; parking
/// workers re-check queue visibility under the same lock), so this is pure
/// insurance against a lost wakeup through the `searching` throttle — and
/// it bounds the *idle* cost of the never-dropped global pool to one wake
/// per worker per second.
const WORKER_PARK_TIMEOUT: Duration = Duration::from_secs(1);

/// How long a thread blocked on a job's completion sleeps between queue
/// re-scans. Job waits only exist while a job is in flight, so a short
/// timeout here costs nothing at idle and keeps fork-join latency low when
/// a helper misses a task pushed between its scan and its wait.
const JOB_WAIT_TIMEOUT: Duration = Duration::from_millis(1);

/// Type-erased borrowed closure `Fn(lo, hi)`. The submitting thread blocks
/// in [`ParPool::run_range`] until every subrange completed, which is what
/// makes the borrow sound beyond `'static`.
#[derive(Clone, Copy)]
struct RawClosure {
    data: *const (),
    call: unsafe fn(*const (), usize, usize),
}

unsafe fn call_closure<F: Fn(usize, usize) + Sync>(data: *const (), lo: usize, hi: usize) {
    // SAFETY: `data` was erased from an `&F` that outlives the job.
    unsafe { (*(data as *const F))(lo, hi) }
}

/// Shared state of one submitted job.
struct JobCore {
    run: RawClosure,
    grain: usize,
    /// Elements of `0..n` not yet executed. The job is complete at 0.
    remaining: AtomicUsize,
    /// First panic payload from any subrange, rethrown by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion latch (guards nothing; pairs with `done_cv`).
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: the raw closure pointer is only dereferenced through `call`, which
// requires `F: Sync`; all other fields are Sync.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    /// Record `span` elements as executed; open the latch at zero.
    fn complete(&self, span: usize) {
        if span == 0 {
            return;
        }
        if self.remaining.fetch_sub(span, Ordering::AcqRel) == span {
            let mut done = self.done.lock().expect("job latch poisoned");
            *done = true;
            self.done_cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

/// One schedulable unit: a contiguous subrange of a job.
struct Task {
    job: Arc<JobCore>,
    lo: usize,
    hi: usize,
}

/// Aggregate scheduler counters (telemetry for tests and tuning).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted through [`ParPool::run_range`] that went parallel.
    pub jobs: u64,
    /// Tasks taken from another worker's deque or by a worker from the
    /// injector.
    pub steals: u64,
    /// Binary splits performed by lazy task splitting.
    pub splits: u64,
}

struct Inner {
    /// Unique pool identity (worker TLS validity check).
    id: u64,
    /// Parallelism including the submitting thread: `workers.len() + 1`.
    threads: usize,
    injector: Mutex<VecDeque<Task>>,
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Condvar pairing for parked workers.
    idle: Mutex<()>,
    wake: Condvar,
    sleepers: AtomicUsize,
    /// Woken workers currently scanning for a task. While one is searching,
    /// pushes do not wake more (rayon's throttle): a successful thief wakes
    /// the next sleeper itself, so wakeups cascade exactly as far as there
    /// is work, and a burst of pushes costs one futex syscall instead of
    /// one per push — the difference between winning and losing to
    /// spawn-per-call on an oversubscribed host.
    searching: AtomicUsize,
    shutdown: AtomicBool,
    jobs: AtomicU64,
    steals: AtomicU64,
    splits: AtomicU64,
}

impl Inner {
    /// Publish a task: to the executing worker's own deque when on a worker
    /// of this pool, otherwise to the injector; wake a parked worker.
    fn push(&self, task: Task, worker: Option<usize>) {
        match worker {
            Some(w) => self.deques[w]
                .lock()
                .expect("deque poisoned")
                .push_back(task),
            None => self
                .injector
                .lock()
                .expect("injector poisoned")
                .push_back(task),
        }
        self.wake_one_if_needed();
    }

    /// Wake one parked worker unless a woken one is already searching.
    fn wake_one_if_needed(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 && self.searching.load(Ordering::SeqCst) == 0 {
            // Take the idle lock so the notify cannot race a worker that is
            // between its queue re-scan and its wait.
            let _guard = self.idle.lock().expect("idle lock poisoned");
            self.wake.notify_one();
        }
    }

    /// Find a task: own deque (LIFO), then injector, then steal from the
    /// other deques (FIFO — the front holds the largest unsplit ranges).
    fn find_task(&self, worker: Option<usize>) -> Option<Task> {
        if let Some(w) = worker {
            if let Some(t) = self.deques[w].lock().expect("deque poisoned").pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().expect("injector poisoned").pop_front() {
            if worker.is_some() {
                self.steals.fetch_add(1, Ordering::Relaxed);
            }
            return Some(t);
        }
        let k = self.deques.len();
        if k == 0 {
            return None;
        }
        // Start the sweep at a per-thread offset so thieves spread out.
        let start = thread_ordinal() % k;
        for i in 0..k {
            let d = (start + i) % k;
            if Some(d) == worker {
                continue;
            }
            if let Some(t) = self.deques[d].lock().expect("deque poisoned").pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Execute one task with lazy binary splitting: publish upper halves
    /// until the range is at most the job's grain, run the leaf, and credit
    /// the leaf's span toward job completion. Panics are captured into the
    /// job and rethrown by the submitter.
    fn execute(&self, task: Task, worker: Option<usize>) {
        let Task { job, lo, mut hi } = task;
        while hi - lo > job.grain {
            let mid = lo + (hi - lo) / 2;
            self.splits.fetch_add(1, Ordering::Relaxed);
            self.push(
                Task {
                    job: Arc::clone(&job),
                    lo: mid,
                    hi,
                },
                worker,
            );
            hi = mid;
        }
        let run = job.run;
        if let Err(payload) =
            catch_unwind(AssertUnwindSafe(|| unsafe { (run.call)(run.data, lo, hi) }))
        {
            let mut slot = job.panic.lock().expect("panic slot poisoned");
            slot.get_or_insert(payload);
        }
        job.complete(hi - lo);
    }

    /// Park until woken or the timeout elapses. Returns immediately if work
    /// appeared between the caller's scan and the park.
    fn park(&self) {
        let guard = self.idle.lock().expect("idle lock poisoned");
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if !self.has_visible_work() && !self.shutdown.load(Ordering::Acquire) {
            let _ = self
                .wake
                .wait_timeout(guard, WORKER_PARK_TIMEOUT)
                .expect("idle lock poisoned");
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    fn has_visible_work(&self) -> bool {
        if !self.injector.lock().expect("injector poisoned").is_empty() {
            return true;
        }
        self.deques
            .iter()
            .any(|d| !d.lock().expect("deque poisoned").is_empty())
    }
}

/// A persistent work-stealing pool. Construct with [`ParPool::with_threads`]
/// and share as `Arc<ParPool>`; all fork-join primitives in this crate run
/// on the pool resolved by [`current`].
pub struct ParPool {
    inner: Arc<Inner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// Pools installed on this thread via [`ParPool::install`] (innermost
    /// last).
    static INSTALLED: std::cell::RefCell<Vec<Arc<ParPool>>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// Set once on pool worker threads: (owning pool, pool id, worker index).
    static WORKER: std::cell::RefCell<Option<(Weak<ParPool>, u64, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Monotonic ordinal per OS thread (steal-sweep offset).
fn thread_ordinal() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ORDINAL: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

static POOL_IDS: AtomicU64 = AtomicU64::new(1);

impl ParPool {
    /// Build a pool with parallelism `threads` (the submitting thread counts
    /// as one, so `threads - 1` workers are spawned; `0` means one per
    /// available core). A pool of 1 runs everything inline.
    pub fn with_threads(threads: usize) -> Arc<ParPool> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let workers = threads.saturating_sub(1);
        let inner = Arc::new(Inner {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            threads,
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            searching: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            jobs: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            splits: AtomicU64::new(0),
        });
        Arc::new_cyclic(|weak: &Weak<ParPool>| {
            let handles = (0..workers)
                .map(|idx| {
                    let inner = Arc::clone(&inner);
                    let weak = weak.clone();
                    std::thread::Builder::new()
                        .name(format!("pbdmm-par-{idx}"))
                        .spawn(move || worker_main(inner, weak, idx))
                        .expect("failed to spawn pool worker")
                })
                .collect();
            ParPool {
                inner,
                handles: Mutex::new(handles),
            }
        })
    }

    /// Parallelism of this pool (submitting thread included).
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Scheduler counters since construction.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs: self.inner.jobs.load(Ordering::Relaxed),
            steals: self.inner.steals.load(Ordering::Relaxed),
            splits: self.inner.splits.load(Ordering::Relaxed),
        }
    }

    /// The worker index of the calling thread *within this pool*, if the
    /// calling thread is one of this pool's workers.
    fn worker_index(&self) -> Option<usize> {
        WORKER.with(|w| match &*w.borrow() {
            Some((_, id, idx)) if *id == self.inner.id => Some(*idx),
            _ => None,
        })
    }

    /// Run `body(lo, hi)` over disjoint subranges covering `0..n`, splitting
    /// lazily down to `grain`, and return once every element is covered.
    /// Runs inline when the pool has no workers or the range is one leaf.
    /// Panics from any subrange are propagated.
    pub fn run_range<F>(&self, n: usize, grain: usize, body: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        if self.inner.threads <= 1 || n <= grain {
            body(0, n);
            return;
        }
        self.inner.jobs.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(JobCore {
            run: RawClosure {
                data: &body as *const F as *const (),
                call: call_closure::<F>,
            },
            grain,
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let worker = self.worker_index();
        // Execute the root task on the submitting thread: it peels upper
        // halves into the queues as it descends to its leftmost leaf.
        self.inner.execute(
            Task {
                job: Arc::clone(&job),
                lo: 0,
                hi: n,
            },
            worker,
        );
        // Cooperative wait: run pool tasks (any job) until this job is done.
        while !job.is_done() {
            match self.inner.find_task(worker) {
                Some(task) => self.inner.execute(task, worker),
                None => {
                    let guard = job.done.lock().expect("job latch poisoned");
                    if !*guard && !job.is_done() {
                        // Timeout bounds the cost of a task pushed between
                        // the failed scan and this wait.
                        let _ = job
                            .done_cv
                            .wait_timeout(guard, JOB_WAIT_TIMEOUT)
                            .expect("job latch poisoned");
                    }
                }
            }
        }
        let payload = job.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Binary fork-join: run `a` and `b` as two parallel tasks and return
    /// both results. The second task is published for stealing while the
    /// caller runs the first.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.inner.threads <= 1 {
            return (a(), b());
        }
        let fa = Mutex::new(Some(a));
        let fb = Mutex::new(Some(b));
        let ra: Mutex<Option<RA>> = Mutex::new(None);
        let rb: Mutex<Option<RB>> = Mutex::new(None);
        self.run_range(2, 1, |lo, hi| {
            for i in lo..hi {
                if i == 0 {
                    let f = fa.lock().expect("join slot").take().expect("fork a reused");
                    *ra.lock().expect("join slot") = Some(f());
                } else {
                    let f = fb.lock().expect("join slot").take().expect("fork b reused");
                    *rb.lock().expect("join slot") = Some(f());
                }
            }
        });
        (
            ra.into_inner().expect("join slot").expect("fork a skipped"),
            rb.into_inner().expect("join slot").expect("fork b skipped"),
        )
    }

    /// Make this pool the [`current`] pool for the duration of `f` on this
    /// thread (and, transitively, for tasks it submits to this pool, since
    /// its workers resolve to their own pool). Scopes nest; the previous
    /// current pool is restored on exit, including on panic.
    pub fn install<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> R {
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                INSTALLED.with(|s| s.borrow_mut().pop());
            }
        }
        INSTALLED.with(|s| s.borrow_mut().push(Arc::clone(self)));
        let _guard = PopGuard;
        f()
    }
}

impl Drop for ParPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.inner.idle.lock().expect("idle lock poisoned");
            self.inner.wake.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ParPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParPool")
            .field("threads", &self.inner.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

fn worker_main(inner: Arc<Inner>, pool: Weak<ParPool>, idx: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((pool, inner.id, idx)));
    loop {
        // Scan under the `searching` flag so concurrent pushes skip their
        // wakeups while this worker is already looking. Once a task is
        // taken the flag drops, and the splits this worker publishes wake
        // the next sleeper — the cascade follows the work.
        inner.searching.fetch_add(1, Ordering::SeqCst);
        let task = inner.find_task(Some(idx));
        inner.searching.fetch_sub(1, Ordering::SeqCst);
        match task {
            Some(task) => inner.execute(task, Some(idx)),
            None => {
                if inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
                inner.park();
            }
        }
    }
}

// --- The process-global default pool ---------------------------------------

struct GlobalSlot {
    pool: Arc<ParPool>,
}

static GLOBAL: OnceLock<RwLock<GlobalSlot>> = OnceLock::new();

/// The process-global default pool, sized to [`crate::par::num_threads`].
/// Built lazily; rebuilt (workers of the old pool wind down once idle) when
/// the configured thread count changes, so `set_num_threads` and the
/// `PBDMM_THREADS` environment variable drive this same scheduler.
pub fn global() -> Arc<ParPool> {
    let want = crate::par::num_threads().max(1);
    let slot = GLOBAL.get_or_init(|| {
        RwLock::new(GlobalSlot {
            pool: ParPool::with_threads(want),
        })
    });
    {
        let read = slot.read().expect("global pool poisoned");
        if read.pool.threads() == want {
            return Arc::clone(&read.pool);
        }
    }
    let mut write = slot.write().expect("global pool poisoned");
    if write.pool.threads() != want {
        write.pool = ParPool::with_threads(want);
    }
    Arc::clone(&write.pool)
}

/// The pool the calling context should run on: the innermost
/// [`ParPool::install`] scope, else the executing pool worker's own pool,
/// else the process-global default.
pub fn current() -> Arc<ParPool> {
    if let Some(p) = INSTALLED.with(|s| s.borrow().last().cloned()) {
        return p;
    }
    if let Some(p) = WORKER.with(|w| w.borrow().as_ref().and_then(|(p, _, _)| p.upgrade())) {
        return p;
    }
    global()
}

/// The parallelism of the [`current`] context *without* building the global
/// pool: an installed or worker pool answers directly; otherwise this is
/// the configured [`crate::par::num_threads`] (the size the global pool
/// would be built with). The `should_par*` gates use this, so a pinned
/// pool's parallelism counts even when the process-wide cap is 1.
pub fn current_threads() -> usize {
    if let Some(n) = INSTALLED.with(|s| s.borrow().last().map(|p| p.threads())) {
        return n;
    }
    if let Some(n) = WORKER.with(|w| {
        w.borrow()
            .as_ref()
            .and_then(|(p, _, _)| p.upgrade())
            .map(|p| p.threads())
    }) {
        return n;
    }
    crate::par::num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    #[test]
    fn run_range_covers_every_element_once() {
        let pool = ParPool::with_threads(4);
        let hits: Vec<TestCounter> = (0..10_000).map(|_| TestCounter::new(0)).collect();
        pool.run_range(10_000, 64, |lo, hi| {
            for slot in &hits[lo..hi] {
                slot.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_range_inline_when_single_threaded() {
        let pool = ParPool::with_threads(1);
        let sum = TestCounter::new(0);
        pool.run_range(1000, 8, |lo, hi| {
            sum.fetch_add((lo..hi).sum::<usize>() as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        assert_eq!(pool.stats().jobs, 0); // inline path submits no job
    }

    #[test]
    fn nested_run_range_completes() {
        let pool = ParPool::with_threads(4);
        let total = TestCounter::new(0);
        pool.run_range(64, 1, |lo, hi| {
            for _ in lo..hi {
                // A nested fork-join from inside a task.
                super::current().run_range(256, 16, |l, h| {
                    total.fetch_add((h - l) as u64, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64 * 256);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ParPool::with_threads(4);
        let (a, b) = pool.join(|| 21 * 2, || "right".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "right");
    }

    #[test]
    fn panics_propagate_to_submitter() {
        let pool = ParPool::with_threads(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_range(10_000, 16, |lo, _| {
                if lo == 0 {
                    panic!("task boom");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "task boom");
        // The pool survives a panicked job.
        let ok = TestCounter::new(0);
        pool.run_range(1000, 16, |lo, hi| {
            ok.fetch_add((hi - lo) as u64, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let a = ParPool::with_threads(2);
        let b = ParPool::with_threads(3);
        a.install(|| {
            assert_eq!(current().threads(), 2);
            b.install(|| assert_eq!(current().threads(), 3));
            assert_eq!(current().threads(), 2);
        });
    }

    #[test]
    fn workers_are_reused_across_jobs() {
        let pool = ParPool::with_threads(4);
        let ids = Mutex::new(std::collections::HashSet::new());
        for _ in 0..20 {
            pool.run_range(50_000, 1024, |_, _| {
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        }
        // 20 jobs, but only the pool's threads ever ran tasks: no churn.
        assert!(ids.lock().unwrap().len() <= 4);
        assert!(pool.stats().jobs >= 20);
    }

    #[test]
    fn global_pool_tracks_thread_cap() {
        let _knobs = crate::par::test_knob_lock();
        // Runs in the shared test process: restore the cap when done.
        crate::par::set_num_threads(3);
        assert_eq!(global().threads(), 3);
        crate::par::set_num_threads(2);
        assert_eq!(global().threads(), 2);
        crate::par::set_num_threads(0);
        assert!(global().threads() >= 1);
    }
}
