//! Long-running soak tests, `#[ignore]`d by default. Run with
//! `cargo test --release --test soak -- --ignored` for extended validation
//! beyond the regular suite's scales.

use pbdmm::graph::gen;
use pbdmm::graph::workload::{churn, insert_then_delete, DeletionOrder};
use pbdmm::matching::driver::{run_workload, run_workload_with};
use pbdmm::matching::verify::check_invariants;
use pbdmm::DynamicMatching;

#[test]
#[ignore = "long-running soak; run with --ignored"]
fn quarter_million_update_churn_with_invariants() {
    let g = gen::erdos_renyi(1 << 14, 1 << 16, 0x50AC);
    let w = churn(&g, 1024, 0x50AD);
    let mut dm = DynamicMatching::with_seed(1);
    let mut batches = 0u64;
    run_workload_with(&mut dm, &w, |m| {
        batches += 1;
        // Full invariant checks are O(state); sample every 16th batch.
        if batches.is_multiple_of(16) {
            check_invariants(m).unwrap();
        }
    });
    check_invariants(&dm).unwrap();
    assert_eq!(dm.num_edges(), 0);
}

#[test]
#[ignore = "long-running soak; run with --ignored"]
fn hypergraph_soak_all_orders() {
    let g = gen::random_hypergraph(1 << 12, 1 << 14, 5, 0x50AE);
    for order in [
        DeletionOrder::Uniform,
        DeletionOrder::Lifo,
        DeletionOrder::VertexClustered,
        DeletionOrder::DegreeBiased,
    ] {
        let w = insert_then_delete(&g, 512, order, 0x50AF);
        let mut dm = DynamicMatching::with_seed(2);
        let r = run_workload(&mut dm, &w);
        check_invariants(&dm).unwrap();
        assert_eq!(dm.num_edges(), 0);
        assert!(dm.stats().mean_payment() <= 2.5, "{order:?}");
        assert!(r.work_per_update() < 1000.0, "{order:?} blew up: {r:?}");
    }
}

#[test]
#[ignore = "long-running soak; run with --ignored"]
fn powerlaw_settle_storm() {
    // Dense hubs + clustered deletions: the heaviest settle pressure we can
    // generate; every structural lemma must hold throughout.
    let g = gen::preferential_attachment(1 << 13, 12, 0x50B0);
    let w = insert_then_delete(&g, 2048, DeletionOrder::VertexClustered, 0x50B1);
    let mut dm = DynamicMatching::with_seed(3);
    run_workload(&mut dm, &w);
    check_invariants(&dm).unwrap();
    let s = dm.stats();
    assert_eq!(dm.num_edges(), 0);
    let min_ratio = s.min_round_sample_ratio();
    if min_ratio.is_finite() {
        assert!(min_ratio >= 2.0, "Lemma 5.6: {min_ratio}");
    }
    assert!(s.natural_to_induced_ratio() > 1.0 / 3.0, "Lemma 5.7");
}
