//! End-to-end tests of the `pbdmm` command-line binary: generate → match →
//! dynamic → cover pipelines through real files and process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn pbdmm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pbdmm"))
        .args(args)
        .output()
        .expect("failed to run pbdmm binary")
}

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pbdmm_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn gen_then_match_pipeline() {
    let path = tmpfile("er.hgr");
    let out = pbdmm(&[
        "gen",
        "er",
        "--n",
        "200",
        "--m",
        "800",
        "--seed",
        "3",
        "-o",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = pbdmm(&["match", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("matching size:"), "{stdout}");
    assert!(stdout.contains("m=800"), "{stdout}");
}

#[test]
fn dynamic_replay_reports_stats() {
    let path = tmpfile("dyn.hgr");
    pbdmm(&[
        "gen",
        "er",
        "--n",
        "100",
        "--m",
        "400",
        "--seed",
        "5",
        "-o",
        path.to_str().unwrap(),
    ]);
    for order in ["uniform", "fifo", "lifo", "clustered", "degree"] {
        let out = pbdmm(&[
            "dynamic",
            path.to_str().unwrap(),
            "--batch",
            "64",
            "--order",
            order,
        ]);
        assert!(out.status.success(), "order {order}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("mean payment phi"), "{stdout}");
        assert!(stdout.contains("800 updates"), "{stdout}");
    }
}

#[test]
fn cover_on_hypergraph() {
    let path = tmpfile("cover.hgr");
    pbdmm(&[
        "gen",
        "hyper",
        "--n",
        "50",
        "--m",
        "200",
        "--rank",
        "3",
        "--seed",
        "7",
        "-o",
        path.to_str().unwrap(),
    ]);
    let out = pbdmm(&["cover", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cover size:"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_message() {
    let out = pbdmm(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = pbdmm(&["match", "/nonexistent/file.hgr"]);
    assert!(!out.status.success());

    let out = pbdmm(&["dynamic"]);
    assert!(!out.status.success());

    let out = pbdmm(&["frobnicate", "x"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn malformed_graph_file_is_rejected() {
    let path = tmpfile("bad.hgr");
    std::fs::write(&path, "0 1\nnot numbers\n").unwrap();
    let out = pbdmm(&["match", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
}
