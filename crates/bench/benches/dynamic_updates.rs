//! E1/E6 bench: batch-dynamic update throughput on empty-to-empty streams
//! across graph sizes and deletion orders (Theorem 1.1 / Corollary 1.2).
//! The contender is driven through the generic `BatchDynamic` driver.

use pbdmm_bench::BenchGroup;
use pbdmm_graph::gen;
use pbdmm_graph::workload::{insert_then_delete, DeletionOrder};
use pbdmm_matching::driver::run_workload;
use pbdmm_matching::DynamicMatching;

fn main() {
    let mut group = BenchGroup::new("dynamic_updates").sample_size(10);
    for &n in &[1usize << 10, 1 << 12, 1 << 14] {
        let g = gen::erdos_renyi(n, 4 * n, 9);
        let w = insert_then_delete(&g, 512, DeletionOrder::Uniform, 11);
        group.bench(
            &format!("empty_to_empty/{n}"),
            Some(w.total_updates() as u64),
            || {
                let mut dm = DynamicMatching::with_seed(1);
                run_workload(&mut dm, &w)
            },
        );
    }
    let n = 1 << 12;
    let g = gen::erdos_renyi(n, 4 * n, 9);
    for (name, order) in [
        ("uniform", DeletionOrder::Uniform),
        ("lifo", DeletionOrder::Lifo),
        ("clustered", DeletionOrder::VertexClustered),
    ] {
        let w = insert_then_delete(&g, 512, order, 13);
        group.bench(
            &format!("order/{name}"),
            Some(w.total_updates() as u64),
            || {
                let mut dm = DynamicMatching::with_seed(2);
                run_workload(&mut dm, &w)
            },
        );
    }
    group.finish();
}
