//! The leveled matching structure of Definition 4.1 and Table 1.
//!
//! Invariants maintained between batch operations:
//!
//! 1. every edge is a *cross* edge or a *sampled* edge (matched edges are
//!    sampled edges in their own sample space);
//! 2. every edge is owned by an incident matched edge (a match owns itself);
//! 3. a match's level is `⌊lg s⌋` where `s` was its sample size at creation;
//! 4. a cross edge's owner is at the maximum level of any matched edge
//!    incident on it.
//!
//! Levels differ by a factor of **2** (not `Θ(r)` as in Assadi–Solomon) —
//! the paper's charging scheme (Lemma 5.6) depends on this.
//!
//! This module owns the raw state and the four structural operations of
//! Figure 3 (`addMatch`, `removeMatch`, `addCrossEdge`, `removeCrossEdge`)
//! plus `adjustCrossEdges`; the batch logic lives in [`crate::dynamic`].

use pbdmm_graph::edge::{EdgeId, EdgeVertices, VertexId};
use pbdmm_primitives::cost::log2_floor;
use pbdmm_primitives::hash::{FxHashMap, FxHashSet};

/// A level: `⌊lg(sample size)⌋`, so at most `lg m < 64`.
pub type Level = u8;

/// Tunable leveling parameters — the design choices §5.2 argues about,
/// exposed so the ablation experiments (E13/E14) can measure them.
///
/// The paper's scheme is `gap_log2 = 1` (levels differ by a factor of
/// **2**; Lemma 5.6's charging needs the gap constant, *not* `Θ(r)` as in
/// Assadi–Solomon) and `heavy_factor = 4` (`isHeavy` at `4·r²·2^l`).
/// `all_light` disables random settling entirely (footnote 8: designating
/// every edge light preserves *correctness* — maximality — but forfeits the
/// work bound; E14 measures how much).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelingConfig {
    /// Levels differ by a factor of `2^gap_log2` (paper: 1, i.e. α = 2).
    pub gap_log2: u32,
    /// `isHeavy(e)` threshold coefficient `c` in `c·r²·α^l` (paper: 4).
    pub heavy_factor: u32,
    /// Treat every deleted match as light (no random settling).
    pub all_light: bool,
}

impl Default for LevelingConfig {
    fn default() -> Self {
        LevelingConfig {
            gap_log2: 1,
            heavy_factor: 4,
            all_light: false,
        }
    }
}

impl LevelingConfig {
    /// The level assigned to a match with creation-time sample size `s`
    /// (Invariant 3, generalized to gap α = 2^gap_log2: `⌊log_α s⌋`).
    #[inline]
    pub fn level_for_sample_size(&self, s: usize) -> Level {
        debug_assert!(s >= 1);
        (log2_floor(s) / self.gap_log2.max(1)) as Level
    }

    /// The `isHeavy` cross-edge threshold for a match at `level` in a
    /// rank-`rank` hypergraph: `heavy_factor · r² · α^level`.
    #[inline]
    pub fn heavy_threshold(&self, level: Level, rank: usize) -> usize {
        let alpha_pow = 1usize << ((self.gap_log2.max(1) as usize) * (level as usize)).min(40);
        (self.heavy_factor as usize) * rank * rank * alpha_pow
    }
}

/// The state an edge can be in (Table 1's `type(e)`; `Unsettled` occurs only
/// transiently inside a batch operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeType {
    /// In the matching `M` (and in its own sample space).
    Matched,
    /// In the sample space `S(m)` of some match `m`.
    Sampled,
    /// Owned by `C(m)` of an incident match at maximal level.
    Cross,
    /// Temporarily removed from the structure mid-operation.
    Unsettled,
}

/// Per-edge record: vertices, type, and owner `p(e)`.
#[derive(Debug, Clone)]
pub struct EdgeRec {
    /// Canonical (sorted, deduplicated) vertex list.
    pub vertices: EdgeVertices,
    /// Current type.
    pub etype: EdgeType,
    /// Owner `p(e)`: the matched edge owning this edge. Meaningful for
    /// `Sampled` and `Cross`; self for `Matched`; unspecified for `Unsettled`.
    pub owner: EdgeId,
}

/// Per-match record: sample space `S(m)`, cross edges `C(m)`, level `l(m)`.
#[derive(Debug, Clone)]
pub struct MatchRec {
    /// `S(m)` — the sample edges this match owns, including itself.
    pub sample: FxHashSet<EdgeId>,
    /// `C(m)` — the cross edges this match owns.
    pub cross: FxHashSet<EdgeId>,
    /// `l(m) = ⌊lg s⌋` for creation-time sample size `s`. Fixed for life.
    pub level: Level,
    /// Creation-time sample size (for invariant checking and statistics).
    pub initial_sample_size: usize,
}

/// Per-vertex record: covering match `p(v)` and the level bags `P(v, l)`.
#[derive(Debug, Clone, Default)]
pub struct VertexRec {
    /// `p(v)` — the matched edge covering this vertex, if any.
    pub matched: Option<EdgeId>,
    /// `P(v, l)` — cross edges at owner-level `l` incident on `v`. Bags are
    /// created lazily (the paper stores initialized bag ids in a hash table
    /// to avoid `Θ(n log n)` initialization; a hash map per vertex is the
    /// same trick).
    pub bags: FxHashMap<Level, FxHashSet<EdgeId>>,
}

/// The leveled matching structure: all edge/match/vertex state.
#[derive(Debug, Default)]
pub struct LeveledStructure {
    /// All live edges (plus transiently unsettled ones mid-operation).
    pub edges: FxHashMap<EdgeId, EdgeRec>,
    /// The matching `M` with per-match state.
    pub matches: FxHashMap<EdgeId, MatchRec>,
    /// Dense vertex table, grown on demand.
    pub vertices: Vec<VertexRec>,
    /// Leveling parameters (paper defaults unless configured for ablation).
    pub config: LevelingConfig,
}

impl LeveledStructure {
    /// Create an empty structure with the paper's parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty structure with explicit leveling parameters.
    pub fn with_config(config: LevelingConfig) -> Self {
        LeveledStructure {
            config,
            ..Self::default()
        }
    }

    /// Ensure the vertex table covers `v`.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if v as usize >= self.vertices.len() {
            self.vertices
                .resize_with(v as usize + 1, VertexRec::default);
        }
    }

    /// `p(v)`: the matched edge covering `v`, if any.
    #[inline]
    pub fn vertex_match(&self, v: VertexId) -> Option<EdgeId> {
        self.vertices.get(v as usize).and_then(|r| r.matched)
    }

    /// Is every vertex of `vs` free (`p(v) = ⊥`)?
    pub fn all_free(&self, vs: &[VertexId]) -> bool {
        vs.iter().all(|&v| self.vertex_match(v).is_none())
    }

    /// The level of match `m`. Panics if `m` is not matched.
    #[inline]
    pub fn level(&self, m: EdgeId) -> Level {
        self.matches[&m].level
    }

    /// The level a match would get for sample size `s` under the paper's
    /// default parameters (Invariant 3). Instances use their own
    /// [`LevelingConfig`]; this associated form exists for tests and docs.
    #[inline]
    pub fn level_for_sample_size(s: usize) -> Level {
        LevelingConfig::default().level_for_sample_size(s)
    }

    /// Figure 3 `addMatch(m, S_e)`: install `m` as a match owning sample
    /// space `sample` (which must contain `m`). All sample edges must
    /// currently be unsettled. Overwrites `p(v)` for `m`'s vertices.
    pub fn add_match(&mut self, m: EdgeId, sample: Vec<EdgeId>) {
        debug_assert!(sample.contains(&m), "match must be in its own sample");
        let size = sample.len();
        let level = self.config.level_for_sample_size(size);
        for &e in &sample {
            let rec = self.edges.get_mut(&e).expect("sample edge must exist");
            rec.etype = EdgeType::Sampled;
            rec.owner = m;
        }
        let mrec = self.edges.get_mut(&m).expect("match edge must exist");
        mrec.etype = EdgeType::Matched;
        let mvs = mrec.vertices.clone();
        for &v in &mvs {
            self.ensure_vertex(v);
            self.vertices[v as usize].matched = Some(m);
        }
        self.matches.insert(
            m,
            MatchRec {
                sample: sample.into_iter().collect(),
                cross: FxHashSet::default(),
                level,
                initial_sample_size: size,
            },
        );
    }

    /// Figure 3 `removeMatch(m)`: delete the match, free its vertices (only
    /// those still pointing at `m` — a stolen match's vertices may already
    /// point at the newer match), remove and return its owned cross edges
    /// (now unsettled). Assumes `m`'s sample edges have already been
    /// converted to cross edges (or individually deleted).
    pub fn remove_match(&mut self, m: EdgeId) -> Vec<EdgeId> {
        let rec = self.matches.remove(&m).expect("removing unknown match");
        let mvs = self.edges[&m].vertices.clone();
        for &v in &mvs {
            let vr = &mut self.vertices[v as usize];
            if vr.matched == Some(m) {
                vr.matched = None;
            }
        }
        let cross: Vec<EdgeId> = rec.cross.into_iter().collect();
        for &e in &cross {
            self.remove_cross_edge_inner(e, rec.level);
        }
        cross
    }

    /// Figure 3 `addCrossEdge(e)`: insert `e` as a cross edge owned by the
    /// maximum-level matched edge incident on it (Invariant 4). At least one
    /// vertex of `e` must be covered.
    pub fn add_cross_edge(&mut self, e: EdgeId) {
        let vs = self.edges[&e].vertices.clone();
        let owner = self
            .max_level_incident_match(&vs)
            .expect("cross edge must touch a matched vertex");
        let level = self.matches[&owner].level;
        {
            let rec = self.edges.get_mut(&e).unwrap();
            rec.etype = EdgeType::Cross;
            rec.owner = owner;
        }
        self.matches.get_mut(&owner).unwrap().cross.insert(e);
        for &v in &vs {
            self.ensure_vertex(v);
            self.vertices[v as usize]
                .bags
                .entry(level)
                .or_default()
                .insert(e);
        }
    }

    /// Figure 3 `removeCrossEdge(e)`: detach `e` from its owner's `C` set and
    /// all `P(v, l)` bags; `e` becomes unsettled.
    pub fn remove_cross_edge(&mut self, e: EdgeId) {
        let owner = self.edges[&e].owner;
        let mrec = self
            .matches
            .get_mut(&owner)
            .expect("cross edge owner must be matched");
        mrec.cross.remove(&e);
        let level = mrec.level;
        self.remove_cross_edge_inner(e, level);
    }

    /// Shared tail of cross-edge removal: clear the `P(v, l)` bags and mark
    /// unsettled. (`remove_match` already consumed the owner's `C` set, so it
    /// skips the `C` removal done by [`Self::remove_cross_edge`].)
    fn remove_cross_edge_inner(&mut self, e: EdgeId, level: Level) {
        let vs = self.edges[&e].vertices.clone();
        for &v in &vs {
            if let Some(bag) = self.vertices[v as usize].bags.get_mut(&level) {
                bag.remove(&e);
            }
        }
        let rec = self.edges.get_mut(&e).unwrap();
        rec.etype = EdgeType::Unsettled;
    }

    /// The incident matched edge of maximum level across `vs`, if any.
    /// Invariant-4 owner selection (`argmax_{v} l(p(v))`).
    pub fn max_level_incident_match(&self, vs: &[VertexId]) -> Option<EdgeId> {
        let mut best: Option<(Level, EdgeId)> = None;
        for &v in vs {
            if let Some(m) = self.vertex_match(v) {
                let l = self.matches[&m].level;
                if best.map(|(bl, _)| l > bl).unwrap_or(true) {
                    best = Some((l, m));
                }
            }
        }
        best.map(|(_, m)| m)
    }

    /// Figure 3 `adjustCrossEdges(E)`: after new matches `new_matches` are
    /// installed, re-home every cross edge incident on their vertices whose
    /// owner sits at a *lower* level than the new match (Invariant 4 repair).
    pub fn adjust_cross_edges(&mut self, new_matches: &[EdgeId]) -> usize {
        let mut to_move: FxHashSet<EdgeId> = FxHashSet::default();
        for &m in new_matches {
            let lvl = self.matches[&m].level;
            let vs = self.edges[&m].vertices.clone();
            for &v in &vs {
                let vr = &self.vertices[v as usize];
                for (&bag_level, bag) in &vr.bags {
                    if bag_level < lvl {
                        to_move.extend(bag.iter().copied());
                    }
                }
            }
        }
        let moved: Vec<EdgeId> = to_move.into_iter().collect();
        for &e in &moved {
            self.remove_cross_edge(e);
        }
        for &e in &moved {
            self.add_cross_edge(e);
        }
        moved.len()
    }

    /// Figure 3 `isHeavy(e)`: `|C(e)| ≥ c·r²·α^{l(e)}` with the paper's
    /// defaults `c = 4, α = 2`. Always false in all-light mode (footnote 8).
    pub fn is_heavy(&self, m: EdgeId, rank: usize) -> bool {
        if self.config.all_light {
            return false;
        }
        let rec = &self.matches[&m];
        rec.cross.len() >= self.config.heavy_threshold(rec.level, rank)
    }

    /// The current matching as a vector of edge ids.
    pub fn matching(&self) -> Vec<EdgeId> {
        self.matches.keys().copied().collect()
    }

    /// Number of live edges currently in the structure (excluding transient
    /// unsettled edges is the caller's concern; between batches all edges are
    /// settled).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eid(i: u64) -> EdgeId {
        EdgeId(i)
    }

    /// Install an edge record in unsettled state.
    fn add_edge(s: &mut LeveledStructure, id: u64, vs: Vec<VertexId>) {
        for &v in &vs {
            s.ensure_vertex(v);
        }
        s.edges.insert(
            eid(id),
            EdgeRec {
                vertices: vs,
                etype: EdgeType::Unsettled,
                owner: eid(id),
            },
        );
    }

    #[test]
    fn level_for_sample_size_is_floor_lg() {
        assert_eq!(LeveledStructure::level_for_sample_size(1), 0);
        assert_eq!(LeveledStructure::level_for_sample_size(2), 1);
        assert_eq!(LeveledStructure::level_for_sample_size(3), 1);
        assert_eq!(LeveledStructure::level_for_sample_size(4), 2);
        assert_eq!(LeveledStructure::level_for_sample_size(1023), 9);
        assert_eq!(LeveledStructure::level_for_sample_size(1024), 10);
    }

    #[test]
    fn add_match_installs_state() {
        let mut s = LeveledStructure::new();
        add_edge(&mut s, 0, vec![0, 1]);
        add_edge(&mut s, 1, vec![1, 2]);
        add_edge(&mut s, 2, vec![0, 3]);
        s.add_match(eid(0), vec![eid(0), eid(1), eid(2)]);
        assert_eq!(s.edges[&eid(0)].etype, EdgeType::Matched);
        assert_eq!(s.edges[&eid(1)].etype, EdgeType::Sampled);
        assert_eq!(s.edges[&eid(1)].owner, eid(0));
        assert_eq!(s.vertex_match(0), Some(eid(0)));
        assert_eq!(s.vertex_match(1), Some(eid(0)));
        assert_eq!(s.vertex_match(2), None);
        assert_eq!(s.level(eid(0)), 1); // floor(lg 3)
    }

    #[test]
    fn cross_edge_goes_to_max_level_owner() {
        let mut s = LeveledStructure::new();
        // Match A at level 0 on vertices {0,1}; match B at level 2 on {2,3}.
        add_edge(&mut s, 0, vec![0, 1]);
        s.add_match(eid(0), vec![eid(0)]);
        add_edge(&mut s, 1, vec![2, 3]);
        add_edge(&mut s, 2, vec![2, 4]);
        add_edge(&mut s, 3, vec![3, 4]);
        add_edge(&mut s, 4, vec![2, 5]);
        add_edge(&mut s, 5, vec![3, 5]);
        s.add_match(eid(1), vec![eid(1), eid(2), eid(3), eid(4), eid(5)]); // level 2
                                                                           // Cross edge touching both matches must be owned by B (level 2).
        add_edge(&mut s, 6, vec![1, 2]);
        s.add_cross_edge(eid(6));
        assert_eq!(s.edges[&eid(6)].owner, eid(1));
        assert!(s.matches[&eid(1)].cross.contains(&eid(6)));
        // Bags on both endpoints at level 2.
        assert!(s.vertices[1].bags[&2].contains(&eid(6)));
        assert!(s.vertices[2].bags[&2].contains(&eid(6)));
    }

    #[test]
    fn remove_cross_edge_unsettles() {
        let mut s = LeveledStructure::new();
        add_edge(&mut s, 0, vec![0, 1]);
        s.add_match(eid(0), vec![eid(0)]);
        add_edge(&mut s, 1, vec![1, 2]);
        s.add_cross_edge(eid(1));
        s.remove_cross_edge(eid(1));
        assert_eq!(s.edges[&eid(1)].etype, EdgeType::Unsettled);
        assert!(s.matches[&eid(0)].cross.is_empty());
        assert!(s.vertices[1].bags[&0].is_empty());
    }

    #[test]
    fn remove_match_returns_cross_and_frees_vertices() {
        let mut s = LeveledStructure::new();
        add_edge(&mut s, 0, vec![0, 1]);
        s.add_match(eid(0), vec![eid(0)]);
        add_edge(&mut s, 1, vec![1, 2]);
        add_edge(&mut s, 2, vec![0, 3]);
        s.add_cross_edge(eid(1));
        s.add_cross_edge(eid(2));
        let mut cross = s.remove_match(eid(0));
        cross.sort();
        assert_eq!(cross, vec![eid(1), eid(2)]);
        assert_eq!(s.vertex_match(0), None);
        assert_eq!(s.vertex_match(1), None);
        assert_eq!(s.edges[&eid(1)].etype, EdgeType::Unsettled);
        assert!(s.matches.is_empty());
    }

    #[test]
    fn remove_match_spares_stolen_vertices() {
        let mut s = LeveledStructure::new();
        add_edge(&mut s, 0, vec![0, 1]);
        s.add_match(eid(0), vec![eid(0)]);
        // A newer match steals vertex 1.
        add_edge(&mut s, 1, vec![1, 2]);
        s.add_match(eid(1), vec![eid(1)]);
        assert_eq!(s.vertex_match(1), Some(eid(1)));
        s.remove_match(eid(0));
        // Vertex 0 freed; vertex 1 still covered by the thief.
        assert_eq!(s.vertex_match(0), None);
        assert_eq!(s.vertex_match(1), Some(eid(1)));
    }

    #[test]
    fn adjust_cross_edges_rehomes_lower_levels() {
        let mut s = LeveledStructure::new();
        // Low-level match A on {0,1} owns cross edge X on {1,2}.
        add_edge(&mut s, 0, vec![0, 1]);
        s.add_match(eid(0), vec![eid(0)]); // level 0
        add_edge(&mut s, 10, vec![1, 2]);
        s.add_cross_edge(eid(10));
        assert_eq!(s.edges[&eid(10)].owner, eid(0));
        // New high-level match B on {2,3,4...} (sample size 4 → level 2).
        for (i, vs) in [
            (1u64, vec![2, 3]),
            (2, vec![3, 4]),
            (3, vec![2, 4]),
            (4, vec![3, 5]),
        ] {
            add_edge(&mut s, i, vs);
        }
        s.add_match(eid(1), vec![eid(1), eid(2), eid(3), eid(4)]);
        let moved = s.adjust_cross_edges(&[eid(1)]);
        assert_eq!(moved, 1);
        assert_eq!(s.edges[&eid(10)].owner, eid(1));
        assert!(s.vertices[1].bags[&2].contains(&eid(10)));
        assert!(s.vertices[1].bags[&0].is_empty());
    }

    #[test]
    fn config_level_gaps() {
        let paper = LevelingConfig::default();
        assert_eq!(paper.level_for_sample_size(1), 0);
        assert_eq!(paper.level_for_sample_size(7), 2);
        assert_eq!(paper.level_for_sample_size(8), 3);
        // α = 4 (gap_log2 = 2): level = ⌊log₄ s⌋.
        let wide = LevelingConfig {
            gap_log2: 2,
            ..Default::default()
        };
        assert_eq!(wide.level_for_sample_size(3), 0);
        assert_eq!(wide.level_for_sample_size(4), 1);
        assert_eq!(wide.level_for_sample_size(15), 1);
        assert_eq!(wide.level_for_sample_size(16), 2);
    }

    #[test]
    fn config_heavy_thresholds() {
        let paper = LevelingConfig::default();
        assert_eq!(paper.heavy_threshold(0, 2), 16); // 4·4·1
        assert_eq!(paper.heavy_threshold(3, 2), 128); // 4·4·8
        let tight = LevelingConfig {
            heavy_factor: 1,
            ..Default::default()
        };
        assert_eq!(tight.heavy_threshold(0, 2), 4);
        let wide = LevelingConfig {
            gap_log2: 2,
            ..Default::default()
        };
        assert_eq!(wide.heavy_threshold(2, 2), 4 * 4 * 16); // α² = 16
    }

    #[test]
    fn all_light_mode_never_heavy() {
        let mut s = LeveledStructure::with_config(LevelingConfig {
            all_light: true,
            ..Default::default()
        });
        add_edge(&mut s, 0, vec![0, 1]);
        s.add_match(eid(0), vec![eid(0)]);
        for i in 0..100u64 {
            add_edge(&mut s, 100 + i, vec![1, 100 + i as u32]);
            s.add_cross_edge(eid(100 + i));
        }
        assert!(!s.is_heavy(eid(0), 2));
    }

    #[test]
    fn is_heavy_threshold() {
        let mut s = LeveledStructure::new();
        add_edge(&mut s, 0, vec![0, 1]);
        s.add_match(eid(0), vec![eid(0)]); // level 0
                                           // threshold for r=2, level 0: 4·4·1 = 16 cross edges.
        for i in 0..15u64 {
            add_edge(&mut s, 100 + i, vec![1, 100 + i as u32]);
            s.add_cross_edge(eid(100 + i));
        }
        assert!(!s.is_heavy(eid(0), 2));
        add_edge(&mut s, 200, vec![1, 200]);
        s.add_cross_edge(eid(200));
        assert!(s.is_heavy(eid(0), 2));
    }
}
