//! The unified batch-update API: [`BatchDynamic`], [`Batch`]/[`Update`],
//! [`BatchOutcome`], [`UpdateError`], and [`DynamicMatchingBuilder`].
//!
//! The paper's algorithm (Fig. 3/4, Theorem 1.1) processes a *single batch
//! containing both insertions and deletions*. This module makes that the
//! public surface: every maximal-matching maintainer (and the set-cover
//! adapter) implements [`BatchDynamic`], whose one entry point
//! [`BatchDynamic::apply`] consumes a mixed [`Batch`] and returns a
//! [`BatchOutcome`] carrying the assigned ids, the ids actually deleted, and
//! an implementation-specific report.
//!
//! Semantics shared by all implementations:
//!
//! * within one `apply`, **all deletions are processed before all
//!   insertions**, in one settlement round (for [`DynamicMatching`] this is
//!   literally one leveled settlement: the edges freed by deletions and the
//!   fresh insertions share the final greedy round);
//! * `apply` is **strict**: an empty vertex set, an unknown/dead edge id, or
//!   a duplicate deletion makes the whole batch fail with [`UpdateError`]
//!   *before any mutation* — the structure is unchanged on error;
//! * the `k`-th `Insert` in the batch corresponds to
//!   `outcome.inserted[k]`;
//! * the legacy `insert_edges`/`delete_edges` methods remain as thin
//!   wrappers over `apply` with their historical (panicking / tolerant)
//!   behavior.
//!
//! # Example
//! ```
//! use pbdmm_matching::api::{Batch, BatchDynamic};
//! use pbdmm_matching::DynamicMatching;
//!
//! let mut m = DynamicMatching::with_seed(42);
//! let out = m.apply(Batch::new().inserts([vec![0, 1], vec![1, 2]])).unwrap();
//! assert_eq!(out.inserted.len(), 2);
//!
//! // One call, mixed deletions + insertions, one settlement round.
//! let out = m
//!     .apply(Batch::new().delete(out.inserted[0]).insert(vec![2, 3]))
//!     .unwrap();
//! assert_eq!(out.deleted_count(), 1);
//! assert!(pbdmm_matching::verify::check_invariants(&m).is_ok());
//! ```

use std::sync::Arc;

use pbdmm_graph::edge::{normalize_vertices, EdgeId, EdgeVertices};
use pbdmm_primitives::hash::FxHashSet;
use pbdmm_primitives::obs::Recorder;
use pbdmm_primitives::pool::ParPool;

pub use pbdmm_graph::update::{Batch, Update};

use crate::dynamic::DynamicMatching;
use crate::level::LevelingConfig;

/// Why a batch was rejected. `apply` validates the whole batch up front and
/// mutates nothing on error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// An insertion's vertex set was empty after normalization (arity
    /// violation — a hyperedge needs at least one vertex).
    EmptyEdge {
        /// Position of the offending update within the batch.
        index: usize,
    },
    /// A deletion named an id that is not a live edge.
    UnknownEdge {
        /// The unknown id.
        id: EdgeId,
        /// Position of the offending update within the batch.
        index: usize,
    },
    /// The same id was deleted twice within one batch.
    DuplicateDelete {
        /// The duplicated id.
        id: EdgeId,
        /// Position of the second occurrence within the batch.
        index: usize,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::EmptyEdge { index } => {
                write!(f, "update {index}: edge with empty vertex set")
            }
            UpdateError::UnknownEdge { id, index } => {
                write!(f, "update {index}: unknown or dead edge {id}")
            }
            UpdateError::DuplicateDelete { id, index } => {
                write!(f, "update {index}: edge {id} deleted twice in one batch")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// What one `apply` call did: ids assigned to insertions (in batch order),
/// ids actually removed, and the implementation's per-batch report.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome<R = ()> {
    /// Ids assigned to the batch's insertions, in batch order.
    pub inserted: Vec<EdgeId>,
    /// Ids that were live and are now deleted. Under strict `apply` this is
    /// every requested deletion; under the tolerant legacy wrappers it is
    /// the surviving subset, so callers can reconcile.
    pub deleted: Vec<EdgeId>,
    /// Implementation-specific per-batch report (e.g. settle iterations and
    /// model cost for [`DynamicMatching`]).
    pub report: R,
}

/// What one update in a batch did, from [`BatchOutcome::per_update`]: the
/// per-submitter view of a strict-apply outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The update was an insertion; this id was assigned to it.
    Inserted(EdgeId),
    /// The update was a deletion of this id.
    Deleted(EdgeId),
}

impl UpdateOutcome {
    /// The edge id this update resolved to (assigned for insertions, the
    /// requested id for deletions).
    pub fn id(&self) -> EdgeId {
        match self {
            UpdateOutcome::Inserted(id) | UpdateOutcome::Deleted(id) => *id,
        }
    }
}

impl<R> BatchOutcome<R> {
    /// Number of edges actually deleted (the count the legacy
    /// `delete_edges -> usize` API used to return).
    pub fn deleted_count(&self) -> usize {
        self.deleted.len()
    }

    /// Split this outcome back onto the batch that produced it: one
    /// [`UpdateOutcome`] per update, **in batch order**, so custom batch
    /// drivers (ticket-completion layers, trace recorders) can hand each
    /// submitter exactly its own slice of the result. (The in-tree service
    /// computes the identical mapping slot-wise so its hot path never
    /// clones the batch; this method is the reusable form of that
    /// contract.)
    ///
    /// Defined for strict [`BatchDynamic::apply`] outcomes, where every
    /// requested deletion succeeded and `inserted` has one id per `Insert`.
    ///
    /// # Panics
    /// If `batch` is not the batch this outcome came from (its insertion or
    /// deletion counts disagree with the outcome's).
    pub fn per_update(&self, batch: &Batch) -> Vec<UpdateOutcome> {
        assert_eq!(
            batch.num_inserts(),
            self.inserted.len(),
            "outcome does not belong to this batch"
        );
        assert_eq!(
            batch.num_deletes(),
            self.deleted.len(),
            "outcome does not belong to this batch"
        );
        let mut next_inserted = self.inserted.iter();
        batch
            .iter()
            .map(|u| match u {
                Update::Insert(_) => {
                    UpdateOutcome::Inserted(*next_inserted.next().expect("one id per insertion"))
                }
                Update::Delete(id) => UpdateOutcome::Deleted(*id),
            })
            .collect()
    }

    /// Total updates applied.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// Did this batch change nothing?
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }
}

/// Validate a mixed batch against a liveness predicate and split it into
/// normalized insertions (batch order) and deduplicate-checked deletions
/// (batch order). This is the shared strict-validation front end every
/// [`BatchDynamic`] implementation uses; on `Err` the caller must leave its
/// structure untouched.
pub fn validate_batch<F>(
    batch: &Batch,
    mut is_live: F,
) -> Result<(Vec<EdgeVertices>, Vec<EdgeId>), UpdateError>
where
    F: FnMut(EdgeId) -> bool,
{
    let mut inserts = Vec::with_capacity(batch.num_inserts());
    let mut deletes = Vec::with_capacity(batch.num_deletes());
    let mut seen: FxHashSet<EdgeId> = FxHashSet::default();
    for (index, u) in batch.iter().enumerate() {
        match u {
            Update::Insert(vs) => {
                let vs = normalize_vertices(vs.clone()).ok_or(UpdateError::EmptyEdge { index })?;
                inserts.push(vs);
            }
            Update::Delete(id) => {
                if !is_live(*id) {
                    return Err(UpdateError::UnknownEdge { id: *id, index });
                }
                if !seen.insert(*id) {
                    return Err(UpdateError::DuplicateDelete { id: *id, index });
                }
                deletes.push(*id);
            }
        }
    }
    Ok((inserts, deletes))
}

/// The tolerant legacy-delete front end, shared by the trait's default
/// `delete_edges` and `DynamicMatching`'s inherent wrapper so the
/// skip-unknown/skip-duplicate contract lives in exactly one place:
/// keep the ids that are live (per `is_live`), first occurrence only,
/// input order preserved. One copy + one in-place `retain` pass — no
/// per-id allocation, and the seen-set is sized up front so
/// duplicate-heavy batches never rehash.
pub(crate) fn filter_live_dedup<F>(ids: &[EdgeId], mut is_live: F) -> Vec<EdgeId>
where
    F: FnMut(EdgeId) -> bool,
{
    let mut seen: FxHashSet<EdgeId> =
        FxHashSet::with_capacity_and_hasher(ids.len(), Default::default());
    let mut out = ids.to_vec();
    out.retain(|&e| is_live(e) && seen.insert(e));
    out
}

/// A maximal-matching maintainer (or adapter) driven by mixed update
/// batches. This is the seam the whole harness goes through: the workload
/// driver, the CLI, the benchmarks and the experiments all accept any
/// `BatchDynamic` so every contender replays identical streams.
///
/// The legacy split-call surface (`insert_edges` / `delete_edges`) is
/// provided as default methods on top of [`Self::apply`]; prefer `apply`.
pub trait BatchDynamic {
    /// Per-batch report type (e.g. [`crate::BatchReport`]).
    type Report;

    /// Apply one mixed batch: deletions first, then insertions, one
    /// settlement round. Strict — see [`UpdateError`]; the structure is
    /// unchanged on error.
    fn apply(&mut self, batch: Batch) -> Result<BatchOutcome<Self::Report>, UpdateError>;

    /// Current matching size.
    fn matching_size(&self) -> usize;

    /// Is this edge currently in the matching?
    fn is_matched(&self, e: EdgeId) -> bool;

    /// Is this edge currently live?
    fn contains_edge(&self, e: EdgeId) -> bool;

    /// Number of live edges.
    fn num_edges(&self) -> usize;

    /// Total model work charged so far.
    fn work(&self) -> u64;

    /// Attach a phase [`Recorder`]: structures that support per-phase
    /// observability record settlement/publication spans and counters
    /// through it. The default does nothing, so plain adapters (the
    /// baselines, test doubles) need no change.
    fn set_obs(&mut self, _obs: Recorder) {}

    /// Legacy wrapper: insert a batch of edges, returning their ids in input
    /// order.
    ///
    /// # Panics
    /// If any edge has an empty vertex set (the historical contract).
    fn insert_edges(&mut self, batch: &[EdgeVertices]) -> Vec<EdgeId> {
        self.apply(Batch::new().inserts(batch.iter().cloned()))
            .expect("edge with empty vertex set")
            .inserted
    }

    /// Legacy wrapper: delete a batch of edges by id, *tolerantly* —
    /// unknown, dead, and duplicate ids are skipped rather than erroring.
    /// Returns the ids that were actually live and are now deleted, so
    /// callers can reconcile; the count is `returned.len()` (also available
    /// as [`BatchOutcome::deleted_count`] on the `apply` path).
    fn delete_edges(&mut self, ids: &[EdgeId]) -> Vec<EdgeId> {
        let live = filter_live_dedup(ids, |e| self.contains_edge(e));
        self.apply(Batch::new().deletes(live))
            .expect("validated deletions cannot fail")
            .deleted
    }
}

/// Metering mode for [`DynamicMatchingBuilder`]: whether the structure's
/// [`pbdmm_primitives::cost::CostMeter`] records model cost (cheap, on by
/// default) or discards all charges (for wall-clock-only benchmarking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeterMode {
    /// Record model work/depth/rounds (the default).
    #[default]
    Enabled,
    /// Discard all charges; `work()` stays 0.
    Disabled,
}

/// Builder for [`DynamicMatching`]: seed, leveling parameters, metering.
///
/// # Examples
/// ```
/// use pbdmm_matching::api::{BatchDynamic, DynamicMatchingBuilder, MeterMode};
/// use pbdmm_matching::LevelingConfig;
///
/// let mut m = DynamicMatchingBuilder::new()
///     .seed(7)
///     .config(LevelingConfig { all_light: true, ..Default::default() })
///     .metering(MeterMode::Disabled)
///     .build();
/// m.insert_edges(&[vec![0, 1]]);
/// assert_eq!(BatchDynamic::work(&m), 0); // metering disabled
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicMatchingBuilder {
    seed: Option<u64>,
    config: Option<LevelingConfig>,
    metering: MeterMode,
    pool: Option<Arc<ParPool>>,
    recycle_ids: bool,
    obs: Option<Recorder>,
}

impl DynamicMatchingBuilder {
    /// Start from the paper's defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// The algorithm's private RNG seed (default: a fixed constant).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Leveling parameters (default: the paper's `α = 2`, `c = 4`).
    pub fn config(mut self, config: LevelingConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Model-cost metering mode (default: enabled).
    pub fn metering(mut self, mode: MeterMode) -> Self {
        self.metering = mode;
        self
    }

    /// Pin the structure's batches to an explicit scheduler: every parallel
    /// primitive of a whole `apply` call (settlement, greedy rounds,
    /// semisorts) runs on this pool. Defaults to the process-global pool
    /// (sized by `set_num_threads` / `PBDMM_THREADS`), which is already
    /// persistent — pass a pool here to isolate this structure's work from
    /// other components sharing the process.
    pub fn pool(mut self, pool: Arc<ParPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Recycle deleted edge ids (default: off). With recycling on, freed
    /// ids are reused LIFO by later insertions, keeping the id space — and
    /// therefore the flat storage tables — dense under unbounded churn.
    /// Reuse is deterministic in apply order, so WAL replay of a recycling
    /// structure reproduces the exact same ids; the historical
    /// "ids are never reused" contract only holds with recycling off.
    pub fn recycle_ids(mut self, recycle: bool) -> Self {
        self.recycle_ids = recycle;
        self
    }

    /// Attach a phase [`Recorder`] (default: disabled — zero overhead).
    /// Settlement and snapshot-publication spans plus settle-round /
    /// level-occupancy / scratch-high-water counters record through it;
    /// see [`pbdmm_primitives::obs`].
    pub fn obs(mut self, obs: Recorder) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Build the structure.
    pub fn build(self) -> DynamicMatching {
        let mut dm = DynamicMatching::with_options(
            self.seed.unwrap_or(0x5eed),
            self.config.unwrap_or_default(),
            self.metering,
        );
        if self.recycle_ids {
            dm.set_recycle_ids(true);
        }
        if let Some(pool) = self.pool {
            dm.set_pool(pool);
        }
        if let Some(obs) = self.obs {
            dm.set_obs(obs);
        }
        dm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_invariants;

    #[test]
    fn strict_apply_rejects_and_leaves_structure_untouched() {
        let mut m = DynamicMatching::with_seed(1);
        let ids = m.insert_edges(&[vec![0, 1], vec![1, 2]]);
        let before = m.matching();

        // Unknown id.
        let err = m.apply(Batch::new().delete(EdgeId(999))).unwrap_err();
        assert!(matches!(err, UpdateError::UnknownEdge { .. }));
        // Duplicate delete.
        let err = m.apply(Batch::new().deletes([ids[0], ids[0]])).unwrap_err();
        assert!(matches!(err, UpdateError::DuplicateDelete { .. }));
        // Empty edge.
        let err = m.apply(Batch::new().insert(vec![])).unwrap_err();
        assert_eq!(err, UpdateError::EmptyEdge { index: 0 });
        // Mixed batch failing late still mutates nothing.
        let err = m
            .apply(Batch::new().insert(vec![5, 6]).delete(EdgeId(999)))
            .unwrap_err();
        assert!(matches!(err, UpdateError::UnknownEdge { .. }));

        assert_eq!(m.num_edges(), 2);
        assert_eq!(m.matching(), before);
        check_invariants(&m).unwrap();
    }

    #[test]
    fn error_messages_name_the_violation() {
        let e = UpdateError::EmptyEdge { index: 3 };
        assert!(e.to_string().contains("empty vertex set"));
        let e = UpdateError::UnknownEdge {
            id: EdgeId(7),
            index: 0,
        };
        assert!(e.to_string().contains("unknown"));
        let e = UpdateError::DuplicateDelete {
            id: EdgeId(7),
            index: 1,
        };
        assert!(e.to_string().contains("twice"));
    }

    #[test]
    fn per_update_splits_in_batch_order() {
        let mut m = DynamicMatching::with_seed(5);
        let ids = m.insert_edges(&[vec![0, 1], vec![2, 3]]);
        let batch = Batch::new()
            .delete(ids[0])
            .insert(vec![4, 5])
            .delete(ids[1])
            .insert(vec![6, 7]);
        let out = m.apply(batch.clone()).unwrap();
        let per = out.per_update(&batch);
        assert_eq!(per.len(), 4);
        assert_eq!(per[0], UpdateOutcome::Deleted(ids[0]));
        assert_eq!(per[1], UpdateOutcome::Inserted(out.inserted[0]));
        assert_eq!(per[2], UpdateOutcome::Deleted(ids[1]));
        assert_eq!(per[3], UpdateOutcome::Inserted(out.inserted[1]));
        assert_eq!(per[1].id(), out.inserted[0]);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn per_update_rejects_foreign_batch() {
        let mut m = DynamicMatching::with_seed(6);
        let out = m.apply(Batch::new().insert(vec![0, 1])).unwrap();
        out.per_update(&Batch::new().inserts([vec![0, 1], vec![2, 3]]));
    }

    #[test]
    fn validate_batch_splits_in_order() {
        let batch = Batch::new()
            .insert(vec![3, 1])
            .delete(EdgeId(0))
            .insert(vec![2]);
        let (ins, del) = validate_batch(&batch, |_| true).unwrap();
        assert_eq!(ins, vec![vec![1, 3], vec![2]]); // normalized
        assert_eq!(del, vec![EdgeId(0)]);
    }

    #[test]
    fn builder_configures_everything() {
        let m = DynamicMatchingBuilder::new()
            .seed(9)
            .config(LevelingConfig {
                gap_log2: 2,
                ..Default::default()
            })
            .build();
        assert_eq!(m.structure().config.gap_log2, 2);

        let mut muted = DynamicMatchingBuilder::new()
            .metering(MeterMode::Disabled)
            .build();
        muted.insert_edges(&[vec![0, 1], vec![1, 2]]);
        assert_eq!(muted.meter().work(), 0);
        check_invariants(&muted).unwrap();
    }

    #[test]
    fn trait_wrappers_match_inherent_behavior() {
        let mut m = DynamicMatching::with_seed(3);
        let ids = BatchDynamic::insert_edges(&mut m, &[vec![0, 1], vec![1, 2]]);
        assert_eq!(ids.len(), 2);
        // Tolerant deletes skip unknown/duplicate ids.
        let gone = BatchDynamic::delete_edges(&mut m, &[ids[0], ids[0], EdgeId(99)]);
        assert_eq!(gone, vec![ids[0]]);
        assert_eq!(m.num_edges(), 1);
    }
}
