//! Randomized property tests for the parallel primitives against sequential
//! oracles: whatever the fork-join scheduler does, results must equal the
//! obvious single-threaded computation. Cases are generated from fixed seeds
//! (deterministic, reproducible) — a std-only stand-in for proptest.

use pbdmm_primitives::dict::ConcurrentU64Set;
use pbdmm_primitives::find_next::find_next_in;
use pbdmm_primitives::permutation::{priorities_to_order, random_priorities};
use pbdmm_primitives::rng::SplitMix64;
use pbdmm_primitives::scan::{exclusive_scan, filter, inclusive_scan, pack_indices};
use pbdmm_primitives::semisort::{count_by, group_by, remove_duplicates, sum_by};
use pbdmm_primitives::sort::{bucket_sort_by_key, bucket_sort_ord};

/// Cases per property: 48 by default; the nightly CI job raises it via
/// `PBDMM_PROP_CASES` for deeper sweeps at the same fixed seeds.
fn cases() -> u64 {
    std::env::var("PBDMM_PROP_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

/// A random vector length skewed toward both tiny (sequential-path) and
/// large (parallel-path) cases.
fn arb_len(rng: &mut SplitMix64, max: usize) -> usize {
    match rng.bounded(4) {
        0 => rng.bounded(8) as usize,
        1 => rng.bounded(200) as usize,
        _ => rng.bounded(max as u64) as usize,
    }
}

fn arb_vec_u64(rng: &mut SplitMix64, max_len: usize, bound: u64) -> Vec<u64> {
    let n = arb_len(rng, max_len);
    (0..n).map(|_| rng.bounded(bound)).collect()
}

#[test]
fn exclusive_scan_matches_fold() {
    let mut rng = SplitMix64::new(0xA0);
    for _ in 0..cases() {
        let xs = arb_vec_u64(&mut rng, 20_000, 1_000_000);
        let (scan, total) = exclusive_scan(&xs);
        let mut acc = 0u64;
        for (s, &x) in scan.iter().zip(&xs) {
            assert_eq!(*s, acc);
            acc += x;
        }
        assert_eq!(total, acc);
    }
}

#[test]
fn inclusive_scan_is_exclusive_plus_self() {
    let mut rng = SplitMix64::new(0xA1);
    for _ in 0..cases() {
        let xs = arb_vec_u64(&mut rng, 10_000, 1000);
        let inc = inclusive_scan(&xs);
        let (exc, _) = exclusive_scan(&xs);
        for i in 0..xs.len() {
            assert_eq!(inc[i], exc[i] + xs[i]);
        }
    }
}

#[test]
fn filter_matches_iterator_filter() {
    let mut rng = SplitMix64::new(0xA2);
    for _ in 0..cases() {
        let xs: Vec<i64> = arb_vec_u64(&mut rng, 16_000, 100)
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let k = 1 + rng.bounded(9) as i64;
        let got = filter(&xs, |&x| x % k == 0);
        let want: Vec<i64> = xs.iter().copied().filter(|&x| x % k == 0).collect();
        assert_eq!(got, want);
    }
}

#[test]
fn pack_indices_matches_positions() {
    let mut rng = SplitMix64::new(0xA3);
    for _ in 0..cases() {
        let flags: Vec<bool> = arb_vec_u64(&mut rng, 16_000, 2)
            .into_iter()
            .map(|x| x == 1)
            .collect();
        let got = pack_indices(&flags);
        let want: Vec<usize> = flags
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i))
            .collect();
        assert_eq!(got, want);
    }
}

#[test]
fn group_by_preserves_multiset() {
    let mut rng = SplitMix64::new(0xA4);
    for _ in 0..cases() {
        let n = arb_len(&mut rng, 12_000);
        let pairs: Vec<(u8, u32)> = (0..n)
            .map(|_| (rng.bounded(32) as u8, rng.next_u64() as u32))
            .collect();
        let groups = group_by(pairs.clone());
        let mut got: Vec<(u8, u32)> = groups
            .iter()
            .flat_map(|(k, vs)| vs.iter().map(move |&v| (*k, v)))
            .collect();
        let mut want = pairs;
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn sum_by_matches_hashmap_fold() {
    let mut rng = SplitMix64::new(0xA5);
    for _ in 0..cases() {
        let n = arb_len(&mut rng, 12_000);
        let pairs: Vec<(u16, u64)> = (0..n)
            .map(|_| (rng.bounded(100) as u16, rng.bounded(1000)))
            .collect();
        let mut want = std::collections::HashMap::new();
        for &(k, v) in &pairs {
            *want.entry(k).or_insert(0u64) += v;
        }
        let got = sum_by(pairs);
        assert_eq!(got.len(), want.len());
        for (k, v) in got {
            assert_eq!(want.get(&k), Some(&v));
        }
    }
}

#[test]
fn count_by_and_dedup_agree() {
    let mut rng = SplitMix64::new(0xA6);
    for _ in 0..cases() {
        let keys: Vec<u32> = arb_vec_u64(&mut rng, 12_000, 64)
            .into_iter()
            .map(|x| x as u32)
            .collect();
        let counts = count_by(keys.clone());
        let dedup = remove_duplicates(keys.clone());
        assert_eq!(counts.len(), dedup.len());
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total as usize, keys.len());
        let from_counts: std::collections::HashSet<u32> = counts.iter().map(|&(k, _)| k).collect();
        let from_dedup: std::collections::HashSet<u32> = dedup.into_iter().collect();
        assert_eq!(from_counts, from_dedup);
    }
}

#[test]
fn bucket_sort_equals_comparison_sort() {
    let mut rng = SplitMix64::new(0xA7);
    for _ in 0..cases() {
        let n = arb_len(&mut rng, 10_000);
        let xs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let got = bucket_sort_by_key(xs.clone(), |&x| x);
        let mut want = xs;
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn bucket_sort_ord_equals_comparison_sort() {
    let mut rng = SplitMix64::new(0xA8);
    for _ in 0..cases() {
        let n = arb_len(&mut rng, 10_000);
        let pairs: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.next_u64() >> rng.bounded(64), rng.next_u64() as u32))
            .collect();
        let got = bucket_sort_ord(pairs.clone(), |t| t.0);
        let mut want = pairs;
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn find_next_equals_linear_scan() {
    let mut rng = SplitMix64::new(0xA9);
    for _ in 0..cases() {
        let xs: Vec<u8> = arb_vec_u64(&mut rng, 500, 4)
            .into_iter()
            .map(|x| x as u8)
            .collect();
        let start = rng.bounded(520) as usize;
        let got = find_next_in(&xs, start, |&x| x == 3);
        let want = (start.min(xs.len())..xs.len()).find(|&j| xs[j] == 3);
        assert_eq!(got, want);
    }
}

#[test]
fn priorities_induce_uniform_support_permutation() {
    let mut rng = SplitMix64::new(0xAA);
    for _ in 0..cases() {
        let n = arb_len(&mut rng, 8000);
        let mut seed_rng = SplitMix64::new(rng.next_u64());
        let pri = random_priorities(n, &mut seed_rng);
        let order = priorities_to_order(&pri);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }
}

#[test]
fn dict_agrees_with_hashset() {
    let mut rng = SplitMix64::new(0xAB);
    for _ in 0..cases() {
        // Pre-size: single-item insert is a phase operation and does not
        // grow the table (see the method docs).
        let dict = ConcurrentU64Set::with_capacity(600);
        let mut oracle = std::collections::HashSet::new();
        let ops = arb_len(&mut rng, 2000);
        for _ in 0..ops {
            let insert = rng.bounded(2) == 0;
            let key = rng.bounded(500);
            if insert {
                assert_eq!(dict.insert(key), oracle.insert(key));
            } else {
                assert_eq!(dict.remove(key), oracle.remove(&key));
            }
        }
        assert_eq!(dict.len(), oracle.len());
        for key in 0..500u64 {
            assert_eq!(dict.contains(key), oracle.contains(&key));
        }
        let mut elems = dict.elements();
        elems.sort_unstable();
        let mut want: Vec<u64> = oracle.into_iter().collect();
        want.sort_unstable();
        assert_eq!(elems, want);
    }
}

#[test]
fn dict_batch_ops_agree_with_hashset() {
    let mut rng = SplitMix64::new(0xAC);
    for _ in 0..cases() {
        let ins = arb_vec_u64(&mut rng, 3000, 2000);
        let del = arb_vec_u64(&mut rng, 3000, 2000);
        let mut dict = ConcurrentU64Set::new();
        dict.batch_insert(&ins);
        dict.batch_remove(&del);
        let mut oracle: std::collections::HashSet<u64> = ins.iter().copied().collect();
        for d in &del {
            oracle.remove(d);
        }
        assert_eq!(dict.len(), oracle.len());
        let member = dict.batch_contains(&(0..2000u64).collect::<Vec<_>>());
        for (k, &m) in member.iter().enumerate() {
            assert_eq!(m, oracle.contains(&(k as u64)), "key {}", k);
        }
    }
}
