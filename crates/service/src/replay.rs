//! Deterministic WAL replay: rebuild a structure from a recorded log.
//!
//! Replay doubles as crash recovery (reconstruct the pre-crash state from
//! the committed prefix) and as a trace-replay harness (drive any
//! [`BatchDynamic`] with a real recorded update stream, e.g. for
//! benchmarking).
//!
//! Determinism argument: the WAL records committed batches in apply order;
//! insertions carry no ids because the structure assigns them sequentially
//! at apply time, so applying the identical batch sequence to a **fresh**
//! structure built with the **same seed** reassigns the identical ids and —
//! since the structure's coins are a function of its seed alone — reproduces
//! the exact final state, matching included.

use pbdmm_graph::update::Update;
use pbdmm_graph::wal::Wal;
use pbdmm_matching::api::BatchDynamic;
use pbdmm_matching::DynamicMatching;
use pbdmm_setcover::DynamicSetCover;

use crate::coalesce::{plan_batch, Slot};

/// What one replay did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Committed WAL batches consumed.
    pub batches: u64,
    /// `apply` calls issued (≥ `batches`: a batch whose deletes
    /// forward-reference its own inserts is split in two).
    pub applies: u64,
    /// Updates applied.
    pub updates: u64,
    /// Deletes deferred past their batch's inserts (see module docs).
    pub deferred: u64,
}

/// Replay a decoded WAL into `s`, which must be **fresh** (no edges ever
/// inserted — id assignment starts at 0) and seeded per the WAL metadata
/// for exact reproduction.
///
/// Batches are re-planned through the coalescer's conflict rules before
/// applying, so a trace whose batch deletes an edge inserted by the same
/// batch (possible in merged or hand-written WALs — a live recorder never
/// emits it) is split: inserts first, the forward-referencing deletes in a
/// follow-up batch. That forward-reference classification predicts ids
/// monotonically; a structure with deleted-id recycling replays any
/// *recorded* log exactly (recycling is deterministic in apply order, and a
/// live recorder only logs deletes of ids that are live at apply time), but
/// hand-written forward-referencing traces are only supported for the
/// default monotonic id assignment.
pub fn replay_into<S: BatchDynamic>(s: &mut S, wal: &Wal) -> Result<ReplayReport, String> {
    if s.num_edges() != 0 {
        return Err("replay target must be a fresh structure".into());
    }
    let mut report = ReplayReport::default();
    // Ids are assigned sequentially from 0 in apply order; this counter
    // predicts them, which is what lets the planner distinguish "created by
    // this batch's inserts" from "plain unknown id". The prediction is
    // verified on the first insert-bearing apply below: a fresh structure
    // assigns 0, 1, 2, … there in either id mode, while one that is empty
    // but has handed out ids before would silently shift every recorded
    // delete onto the wrong edge. (Later applies are not checked — a
    // recycling structure legitimately reuses freed ids from then on.)
    let mut next_insert_id: u64 = 0;
    let mut freshness_verified = false;
    for (seq, batch) in wal.batches.iter().enumerate() {
        let plan = plan_batch(
            batch.as_slice().to_vec(),
            |id| s.contains_edge(id),
            |id| id.raw() >= next_insert_id,
        );
        for slot in &plan.slots {
            match slot {
                Slot::RejectUnknown(id) => {
                    return Err(format!("batch {seq}: delete of unknown edge {id}"));
                }
                Slot::RejectEmpty => {
                    return Err(format!("batch {seq}: insert with empty vertex set"));
                }
                _ => {}
            }
        }
        let inserts = plan.batch.num_inserts() as u64;
        if !plan.batch.is_empty() {
            report.updates += plan.batch.len() as u64;
            report.applies += 1;
            let out = s
                .apply(plan.batch)
                .map_err(|e| format!("batch {seq}: {e}"))?;
            if !freshness_verified && !out.inserted.is_empty() {
                for (k, id) in out.inserted.iter().enumerate() {
                    if id.raw() != k as u64 {
                        return Err(format!(
                            "replay target is not fresh: expected insert id e{k}, \
                             structure assigned {id} (its id counter is not at 0); \
                             the target state is now unspecified"
                        ));
                    }
                }
                freshness_verified = true;
            }
        }
        next_insert_id += inserts;
        if !plan.deferred.is_empty() {
            // Forward-referencing deletes: their targets exist now. The
            // follow-up goes through the planner again so duplicates among
            // the deferred deletes coalesce instead of failing strict
            // `apply` (merged traces can carry them).
            let follow_ops: Vec<Update> = plan
                .deferred
                .iter()
                .map(|&i| batch.as_slice()[i].clone())
                .collect();
            let follow = plan_batch(follow_ops, |id| s.contains_edge(id), |_| false);
            for slot in &follow.slots {
                if let Slot::RejectUnknown(id) = slot {
                    return Err(format!("batch {seq}: delete of unknown edge {id}"));
                }
            }
            if !follow.batch.is_empty() {
                report.deferred += follow.batch.len() as u64;
                report.updates += follow.batch.len() as u64;
                report.applies += 1;
                s.apply(follow.batch)
                    .map_err(|e| format!("batch {seq} (deferred deletes): {e}"))?;
            }
        }
        report.batches += 1;
    }
    Ok(report)
}

/// Replay a WAL recorded over a [`DynamicMatching`]: builds a fresh
/// structure with the WAL's seed and replays every committed batch.
pub fn replay_matching(wal: &Wal) -> Result<(DynamicMatching, ReplayReport), String> {
    let mut m = DynamicMatching::with_seed(wal.meta.seed);
    let report = replay_into(&mut m, wal)?;
    Ok((m, report))
}

/// Replay a WAL recorded over a [`DynamicSetCover`] (element updates).
pub fn replay_setcover(wal: &Wal) -> Result<(DynamicSetCover, ReplayReport), String> {
    let mut c = DynamicSetCover::with_seed(wal.meta.seed);
    let report = replay_into(&mut c, wal)?;
    Ok((c, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbdmm_graph::edge::EdgeId;
    use pbdmm_graph::update::Batch;
    use pbdmm_graph::wal::WalMeta;
    use pbdmm_matching::verify::check_invariants;

    fn wal_of(batches: Vec<Batch>) -> Wal {
        Wal {
            meta: WalMeta {
                structure: "matching".into(),
                seed: 11,
            },
            batches,
            truncated: false,
        }
    }

    #[test]
    fn replays_to_identical_state() {
        let batches = vec![
            Batch::new().inserts([vec![0, 1], vec![1, 2], vec![2, 3]]),
            Batch::new().delete(EdgeId(1)).insert(vec![3, 4]),
            Batch::new().deletes([EdgeId(0), EdgeId(3)]),
        ];
        // Reference: drive a structure directly with the same batches.
        let mut reference = DynamicMatching::with_seed(11);
        for b in &batches {
            reference.apply(b.clone()).unwrap();
        }
        let (replayed, report) = replay_matching(&wal_of(batches)).unwrap();
        assert_eq!(report.batches, 3);
        assert_eq!(report.updates, 7);
        assert_eq!(report.deferred, 0);
        let mut a = reference.matching();
        let mut b = replayed.matching();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "matching state must reproduce exactly");
        assert_eq!(reference.num_edges(), replayed.num_edges());
        check_invariants(&replayed).unwrap();
    }

    #[test]
    fn rejects_emptied_but_used_targets() {
        // An emptied structure still fails freshness: its id counter is not
        // at 0, so recorded deletes would land on the wrong edges. Detected
        // on the first apply, before any recorded delete can resolve.
        let mut used = DynamicMatching::with_seed(11);
        let ids = used.insert_edges(&[vec![0, 1]]);
        used.delete_edges(&ids);
        assert_eq!(used.num_edges(), 0);
        let err =
            replay_into(&mut used, &wal_of(vec![Batch::new().insert(vec![2, 3])])).unwrap_err();
        assert!(err.contains("not fresh"), "{err}");
    }

    #[test]
    fn deferred_duplicate_deletes_coalesce() {
        // `i 0 1; d 0; d 0`: both deletes forward-reference the batch's own
        // insert and defer; the follow-up batch must deduplicate them
        // instead of failing strict apply.
        let batches = vec![Batch::new()
            .insert(vec![0, 1])
            .delete(EdgeId(0))
            .delete(EdgeId(0))];
        let (m, report) = replay_matching(&wal_of(batches)).unwrap();
        assert_eq!(m.num_edges(), 0);
        assert_eq!(report.deferred, 1);
        assert_eq!(report.applies, 2);
        check_invariants(&m).unwrap();
    }

    #[test]
    fn defers_forward_referencing_deletes() {
        // One hand-written batch inserting two edges and deleting the first
        // of them (id 0 is assigned by this very batch): the replayer must
        // split it rather than reject it.
        let batches = vec![Batch::new()
            .insert(vec![0, 1])
            .delete(EdgeId(0))
            .insert(vec![2, 3])];
        let (m, report) = replay_matching(&wal_of(batches)).unwrap();
        assert_eq!(report.deferred, 1);
        assert_eq!(report.applies, 2);
        assert_eq!(m.num_edges(), 1);
        assert!(m.contains_edge(EdgeId(1)));
        check_invariants(&m).unwrap();
    }

    #[test]
    fn rejects_unknown_ids_and_stale_targets() {
        let err = replay_matching(&wal_of(vec![Batch::new().delete(EdgeId(5))])).unwrap_err();
        assert!(err.contains("unknown"), "{err}");
        // A forward reference beyond the batch's own inserts is unknown too.
        let err = replay_matching(&wal_of(vec![Batch::new()
            .insert(vec![0, 1])
            .delete(EdgeId(7))]))
        .unwrap_err();
        assert!(err.contains("unknown"), "{err}");
        // Fresh-structure precondition.
        let mut used = DynamicMatching::with_seed(1);
        used.insert_edges(&[vec![0, 1]]);
        let err = replay_into(&mut used, &wal_of(vec![])).unwrap_err();
        assert!(err.contains("fresh"), "{err}");
    }

    #[test]
    fn replays_setcover_elements() {
        let batches = vec![
            Batch::new().inserts([vec![0, 1], vec![1, 2], vec![2]]),
            Batch::new().delete(EdgeId(0)),
        ];
        let wal = Wal {
            meta: WalMeta {
                structure: "setcover".into(),
                seed: 3,
            },
            batches,
            truncated: false,
        };
        let (c, report) = replay_setcover(&wal).unwrap();
        assert_eq!(report.batches, 2);
        assert_eq!(c.num_elements(), 2);
        assert!(c.cover_size() > 0);
        check_invariants(c.matching()).unwrap();
    }
}
