//! End-to-end run with the worker cap forced above the core count, so the
//! whole algorithm exercises its genuinely-parallel primitive paths even on
//! single-core CI boxes. Own test binary: the global cap stays in this
//! process.

use pbdmm::graph::{gen, workload, DeletionOrder};
use pbdmm::matching::driver::run_workload_with;
use pbdmm::matching::verify::check_invariants;
use pbdmm::primitives::par;
use pbdmm::{Batch, DynamicMatching, DynamicMatchingBuilder};

#[test]
fn dynamic_matching_sound_under_forced_parallelism() {
    par::set_num_threads(4);
    assert!(par::should_par(1 << 20));

    // Big enough single batches that the greedy matcher's primitives cross
    // the parallel grain.
    let g = gen::erdos_renyi(4000, 16_000, 0xF0);
    let mut dm = DynamicMatching::with_seed(1);
    let out = dm
        .apply(Batch::new().inserts(g.edges.iter().cloned()))
        .unwrap();
    check_invariants(&dm).unwrap();
    let matched: Vec<_> = out
        .inserted
        .iter()
        .copied()
        .filter(|&e| dm.is_matched(e))
        .collect();
    // One mixed mega-batch: all matched edges out, a fresh wave in.
    let fresh: Vec<Vec<u32>> = (0..5000u32)
        .map(|i| vec![9000 + i, 9000 + (i + 1) % 5000])
        .collect();
    dm.apply(Batch::new().deletes(matched).inserts(fresh))
        .unwrap();
    check_invariants(&dm).unwrap();

    // And a full workload replay, checking invariants along the way.
    let w = workload::insert_then_delete(&g, 2048, DeletionOrder::VertexClustered, 0xF1);
    let mut dm = DynamicMatching::with_seed(2);
    run_workload_with(&mut dm, &w, |m| check_invariants(m).unwrap());
    assert_eq!(dm.num_edges(), 0);
}

#[test]
fn id_recycling_is_deterministic_under_forced_parallelism() {
    // Slab id reuse with the scheduler cap above the core count: the ids a
    // recycling structure assigns across reuse boundaries must not depend
    // on thread scheduling, and every invariant must hold throughout.
    par::set_num_threads(4);
    let g = gen::erdos_renyi(1500, 6000, 0xF2);
    let w = workload::churn(&g, 512, 0xF3);
    let run = |_: ()| {
        let mut dm = DynamicMatchingBuilder::new()
            .seed(3)
            .recycle_ids(true)
            .build();
        run_workload_with(&mut dm, &w, |m| check_invariants(m).unwrap());
        let st = dm.storage_stats();
        assert!(st.recycling);
        assert_eq!(dm.num_edges(), 0);
        // Empty-to-empty churn returns the whole id space to the free list.
        assert_eq!(st.free_ids as u64, st.ids_allocated);
        (st.ids_allocated, st.edge_slots)
    };
    let (ids_a, slots_a) = run(());
    let (ids_b, slots_b) = run(());
    assert_eq!((ids_a, slots_a), (ids_b, slots_b));
    // Recycling keeps the table far denser than the total insert history.
    assert!(slots_a < g.m(), "slots {slots_a} vs {} inserts", g.m());
}
