//! Property-based tests (proptest) over the core invariants:
//! arbitrary small hypergraphs and update schedules must never violate the
//! leveled-structure invariants, maximality, sample-space partitioning, or
//! greedy parallel/sequential agreement.

use proptest::collection::vec;
use proptest::prelude::*;

use pbdmm::graph::EdgeId;
use pbdmm::matching::greedy::{
    parallel_greedy_match_with_priorities, sequential_greedy_match_with_priorities,
    validate_match_result,
};
use pbdmm::matching::verify::check_invariants;
use pbdmm::primitives::cost::CostMeter;
use pbdmm::primitives::permutation::random_priorities;
use pbdmm::primitives::rng::SplitMix64;
use pbdmm::DynamicMatching;

/// Strategy: a small hypergraph as a list of edges, each 1..=4 vertices in
/// [0, 24). Vertices are deduplicated by the library.
fn arb_edges(max_edges: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    vec(vec(0u32..24, 1..=4), 1..=max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_parallel_matches_sequential_matching(edges in arb_edges(40), seed in 0u64..1000) {
        let edges: Vec<Vec<u32>> = edges
            .into_iter()
            .map(|e| pbdmm::graph::normalize_vertices(e).unwrap())
            .collect();
        let mut rng = SplitMix64::new(seed);
        let pri = random_priorities(edges.len(), &mut rng);
        let seq = sequential_greedy_match_with_priorities(&edges, &pri);
        let par = parallel_greedy_match_with_priorities(&edges, &pri, &CostMeter::new());
        let mut a = seq.matched_edges();
        let mut b = par.matched_edges();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert!(validate_match_result(&edges, &seq).is_ok());
        prop_assert!(validate_match_result(&edges, &par).is_ok());
    }

    #[test]
    fn greedy_sample_spaces_partition(edges in arb_edges(40), seed in 0u64..1000) {
        let edges: Vec<Vec<u32>> = edges
            .into_iter()
            .map(|e| pbdmm::graph::normalize_vertices(e).unwrap())
            .collect();
        let mut rng = SplitMix64::new(seed);
        let pri = random_priorities(edges.len(), &mut rng);
        let par = parallel_greedy_match_with_priorities(&edges, &pri, &CostMeter::new());
        let total: usize = par.matches.iter().map(|(_, s)| s.len()).sum();
        prop_assert_eq!(total, edges.len());
        // The matched edge has the highest priority within its sample space.
        for (m, s) in &par.matches {
            let best = s.iter().min_by_key(|&&e| pri[e]).unwrap();
            prop_assert_eq!(best, m);
        }
    }

    #[test]
    fn dynamic_invariants_hold_for_arbitrary_schedules(
        edges in arb_edges(30),
        ops in vec(any::<(bool, u8)>(), 1..60),
        seed in 0u64..1000,
    ) {
        // Interpret ops as an oblivious schedule over the edge universe:
        // (true, k) inserts the next k+1 unseen edges; (false, k) deletes
        // k+1 live edges round-robin.
        let mut dm = DynamicMatching::with_seed(seed);
        let mut next = 0usize;
        let mut live: Vec<EdgeId> = Vec::new();
        for (is_insert, k) in ops {
            let k = k as usize % 8 + 1;
            if is_insert && next < edges.len() {
                let take = k.min(edges.len() - next);
                let batch: Vec<Vec<u32>> = edges[next..next + take].to_vec();
                let ids = dm.insert_edges(&batch);
                live.extend(ids);
                next += take;
            } else if !live.is_empty() {
                let take = k.min(live.len());
                let dels: Vec<EdgeId> = live.drain(..take).collect();
                dm.delete_edges(&dels);
            }
            prop_assert!(check_invariants(&dm).is_ok(), "{:?}", check_invariants(&dm));
        }
        // Drain and confirm empty.
        let dels: Vec<EdgeId> = std::mem::take(&mut live);
        dm.delete_edges(&dels);
        prop_assert!(check_invariants(&dm).is_ok());
        prop_assert_eq!(dm.num_edges(), 0);
    }

    #[test]
    fn matched_queries_agree_with_matching_set(edges in arb_edges(25), seed in 0u64..100) {
        let mut dm = DynamicMatching::with_seed(seed);
        let ids = dm.insert_edges(&edges);
        let matching: std::collections::HashSet<EdgeId> = dm.matching().into_iter().collect();
        prop_assert_eq!(matching.len(), dm.matching_size());
        for &id in &ids {
            prop_assert_eq!(dm.is_matched(id), matching.contains(&id));
        }
        // Every vertex query points at a real matched edge that covers it.
        for e in &matching {
            for &v in dm.edge_vertices(*e).unwrap() {
                prop_assert_eq!(dm.matched_edge_of(v), Some(*e));
            }
        }
    }

    #[test]
    fn workload_generators_always_validate(
        n in 4usize..50,
        m in 1usize..100,
        batch in 1usize..32,
        seed in 0u64..500,
    ) {
        let g = pbdmm::graph::gen::erdos_renyi(n, m, seed);
        for w in [
            pbdmm::graph::workload::insert_then_delete(&g, batch, pbdmm::DeletionOrder::Uniform, seed),
            pbdmm::graph::workload::sliding_window(&g, batch, 3, pbdmm::DeletionOrder::Fifo, seed),
            pbdmm::graph::workload::churn(&g, batch, seed),
        ] {
            prop_assert!(w.validate().is_ok());
            prop_assert!(w.is_empty_to_empty());
        }
    }

    #[test]
    fn scan_filter_agree_with_std(xs in vec(0u64..1000, 0..2000)) {
        let (scanned, total) = pbdmm::primitives::exclusive_scan(&xs);
        let mut acc = 0u64;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(scanned[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
        let kept = pbdmm::primitives::filter(&xs, |&x| x % 2 == 0);
        let want: Vec<u64> = xs.iter().copied().filter(|x| x % 2 == 0).collect();
        prop_assert_eq!(kept, want);
    }

    #[test]
    fn group_by_loses_nothing(pairs in vec((0u16..64, 0u32..10_000), 0..3000)) {
        let groups = pbdmm::primitives::group_by(pairs.clone());
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        prop_assert_eq!(total, pairs.len());
        let keys: std::collections::HashSet<u16> = pairs.iter().map(|p| p.0).collect();
        prop_assert_eq!(groups.len(), keys.len());
    }
}
