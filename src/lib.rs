//! # pbdmm — Parallel Batch-Dynamic Maximal Matching
//!
//! A production-quality Rust reproduction of *Blelloch & Brady, "Parallel
//! Batch-Dynamic Maximal Matching with Constant Work per Update", SPAA 2025*
//! (arXiv:2503.09908).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`matching`] ([`DynamicMatching`]) — the batch-dynamic maximal matching
//!   structure: `O(1)` expected amortized work per update on graphs,
//!   `O(r³)` on rank-`r` hypergraphs, `O(log³ m)` depth per batch whp;
//! * [`matching::api`] ([`Batch`], [`Update`], [`BatchDynamic`]) — the
//!   unified mixed-batch update surface every contender implements;
//! * [`matching::greedy`] — work-efficient static maximal hypergraph
//!   matching (`O(m')` work, `O(log² m)` depth whp);
//! * [`setcover`] ([`DynamicSetCover`]) — static and batch-dynamic
//!   r-approximate set cover via the matching reduction;
//! * [`graph`] — hypergraphs, generators, oblivious workload streams, and
//!   the durable write-ahead log ([`graph::wal`]);
//! * [`service`] ([`UpdateService`]) — the concurrent ingest/serve layer:
//!   many producers submit single updates, a coalescer forms valid mixed
//!   batches under a size/latency policy, logs them to a WAL, applies them
//!   on a pinned pool, and completes per-submitter tickets;
//! * [`net`] ([`net::Daemon`]) — the deployable network tier: a std-only
//!   TCP daemon speaking a versioned length-prefixed wire protocol
//!   ([`net::proto`]), with per-connection backpressure and admission
//!   control over the service layer, plus the blocking client and the
//!   multi-connection load generator behind `pbdmm daemon` / `pbdmm load`;
//! * [`primitives`] — the parallel toolbox (scan, semisort, dictionaries,
//!   random permutations, work/depth metering).
//!
//! ## Quickstart
//!
//! The single entry point is [`DynamicMatching::apply`]: one mixed
//! [`Batch`] of insertions and deletions, settled in one leveled round —
//! the paper's native batch semantics.
//!
//! ```
//! use pbdmm::{Batch, DynamicMatching};
//!
//! let mut m = DynamicMatching::with_seed(7);
//! let out = m
//!     .apply(Batch::new().inserts([vec![0, 1], vec![1, 2], vec![2, 3]]))
//!     .unwrap();
//! assert!(m.matching_size() >= 1); // maximal after every batch
//!
//! // Mixed batch: one deletion + one insertion, one settlement round.
//! let out = m
//!     .apply(Batch::new().delete(out.inserted[0]).insert(vec![0, 3]))
//!     .unwrap();
//! assert_eq!(out.deleted_count(), 1);
//! assert_eq!(m.num_edges(), 3);
//! ```

#![warn(missing_docs)]

pub use pbdmm_graph as graph;
pub use pbdmm_matching as matching;
pub use pbdmm_net as net;
pub use pbdmm_primitives as primitives;
pub use pbdmm_service as service;
pub use pbdmm_setcover as setcover;

pub use pbdmm_graph::{Batch, DeletionOrder, EdgeId, Hypergraph, Update, VertexId, Workload};
pub use pbdmm_matching::{
    BatchDynamic, BatchOutcome, DynamicMatching, DynamicMatchingBuilder, LevelingConfig,
    MatchResult, MeterMode, UpdateError, UpdateOutcome,
};
pub use pbdmm_service::{CoalescePolicy, ServiceConfig, UpdateService};
pub use pbdmm_setcover::{DynamicSetCover, ElementId, SetId};
