//! E13/E14 bench: leveling-parameter ablations — the design choices §5.2
//! argues for (level gap α = 2, heaviness coefficient 4) and footnote 8's
//! all-light mode, under a settle-heavy power-law workload.

use pbdmm_bench::BenchGroup;
use pbdmm_graph::gen;
use pbdmm_graph::workload::{insert_then_delete, DeletionOrder};
use pbdmm_matching::driver::run_workload;
use pbdmm_matching::{DynamicMatching, LevelingConfig};

fn main() {
    let mut group = BenchGroup::new("ablation").sample_size(10);
    let g = gen::preferential_attachment(1 << 11, 6, 51);
    let w = insert_then_delete(&g, 256, DeletionOrder::VertexClustered, 53);
    let updates = w.total_updates() as u64;

    let configs: Vec<(&str, LevelingConfig)> = vec![
        ("paper_a2_c4", LevelingConfig::default()),
        (
            "tight_a2_c1",
            LevelingConfig {
                heavy_factor: 1,
                ..Default::default()
            },
        ),
        (
            "loose_a2_c16",
            LevelingConfig {
                heavy_factor: 16,
                ..Default::default()
            },
        ),
        (
            "wide_a4_c4",
            LevelingConfig {
                gap_log2: 2,
                ..Default::default()
            },
        ),
        (
            "all_light",
            LevelingConfig {
                all_light: true,
                ..Default::default()
            },
        ),
    ];
    for (name, cfg) in configs {
        group.bench(&format!("config/{name}"), Some(updates), || {
            let mut dm = DynamicMatching::with_seed_and_config(7, cfg);
            run_workload(&mut dm, &w)
        });
    }
    group.finish();
}
