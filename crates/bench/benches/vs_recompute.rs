//! E8 bench: batch-dynamic maintenance vs recomputing the static matching
//! per batch, across batch sizes (the crossover experiment). Both
//! contenders run through the generic `BatchDynamic` driver.

use pbdmm_bench::BenchGroup;
use pbdmm_graph::gen;
use pbdmm_graph::workload::{sliding_window, DeletionOrder};
use pbdmm_matching::baseline::RecomputeMatching;
use pbdmm_matching::driver::run_workload;
use pbdmm_matching::DynamicMatching;

fn main() {
    let mut group = BenchGroup::new("vs_recompute").sample_size(10);
    let n = 1 << 12;
    let g = gen::erdos_renyi(n, 4 * n, 31);
    for &batch in &[64usize, 1024] {
        let w = sliding_window(&g, batch, 8, DeletionOrder::Fifo, 33);
        group.bench(
            &format!("dynamic/{batch}"),
            Some(w.total_updates() as u64),
            || {
                let mut dm = DynamicMatching::with_seed(4);
                run_workload(&mut dm, &w)
            },
        );
        group.bench(
            &format!("recompute/{batch}"),
            Some(w.total_updates() as u64),
            || {
                let mut rc = RecomputeMatching::with_seed(4);
                run_workload(&mut rc, &w)
            },
        );
    }
    group.finish();
}
