//! The unified batch-update vocabulary: [`Update`] and [`Batch`].
//!
//! The paper's batch-dynamic algorithm (Fig. 3/4, Theorem 1.1) processes a
//! *single batch containing both insertions and deletions*. These types make
//! that first-class: a [`Batch`] is an ordered list of mixed [`Update`]s,
//! built either directly or with the builder-style helpers, and consumed by
//! any `BatchDynamic` implementation (see the `pbdmm-matching` crate's `api`
//! module).
//!
//! Semantics contract (documented here because every consumer shares it):
//! within one `apply` call, **all deletions are processed before all
//! insertions**, and both settle in a single leveled settlement round. The
//! relative order of updates of the same kind is preserved — in particular,
//! the `k`-th `Insert` in the batch corresponds to the `k`-th id in the
//! outcome's `inserted` vector.

use crate::edge::{EdgeId, EdgeVertices};

/// One edge update: insert a new hyperedge (by vertex set) or delete a live
/// edge (by id). Ids are assigned by the structure at insertion time, so a
/// batch can never delete an edge it also inserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// Insert a hyperedge over the given vertices (normalized by the
    /// consumer: sorted, deduplicated, non-empty).
    Insert(EdgeVertices),
    /// Delete the live edge with this id.
    Delete(EdgeId),
}

impl Update {
    /// Is this an insertion?
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::Insert(_))
    }

    /// Is this a deletion?
    pub fn is_delete(&self) -> bool {
        matches!(self, Update::Delete(_))
    }
}

/// An ordered batch of mixed edge updates, with builder-style construction.
///
/// # Examples
/// ```
/// use pbdmm_graph::update::{Batch, Update};
/// use pbdmm_graph::edge::EdgeId;
///
/// let batch = Batch::new()
///     .insert(vec![0, 1])
///     .insert(vec![1, 2, 3])
///     .delete(EdgeId(7));
/// assert_eq!(batch.len(), 3);
/// assert_eq!(batch.num_inserts(), 2);
/// assert_eq!(batch.num_deletes(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    updates: Vec<Update>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// An empty batch with room for `n` updates.
    pub fn with_capacity(n: usize) -> Self {
        Batch {
            updates: Vec::with_capacity(n),
        }
    }

    /// Builder-style: append an insertion.
    pub fn insert(mut self, vertices: EdgeVertices) -> Self {
        self.updates.push(Update::Insert(vertices));
        self
    }

    /// Builder-style: append a deletion.
    pub fn delete(mut self, id: EdgeId) -> Self {
        self.updates.push(Update::Delete(id));
        self
    }

    /// Builder-style: append many insertions.
    pub fn inserts<I: IntoIterator<Item = EdgeVertices>>(mut self, vs: I) -> Self {
        self.updates.extend(vs.into_iter().map(Update::Insert));
        self
    }

    /// Builder-style: append many deletions.
    pub fn deletes<I: IntoIterator<Item = EdgeId>>(mut self, ids: I) -> Self {
        self.updates.extend(ids.into_iter().map(Update::Delete));
        self
    }

    /// Append one update in place.
    pub fn push(&mut self, u: Update) {
        self.updates.push(u);
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Number of insertions in the batch.
    pub fn num_inserts(&self) -> usize {
        self.updates.iter().filter(|u| u.is_insert()).count()
    }

    /// Number of deletions in the batch.
    pub fn num_deletes(&self) -> usize {
        self.updates.iter().filter(|u| u.is_delete()).count()
    }

    /// Iterate over the updates in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Update> {
        self.updates.iter()
    }

    /// The updates as a slice.
    pub fn as_slice(&self) -> &[Update] {
        &self.updates
    }
}

impl From<Vec<Update>> for Batch {
    fn from(updates: Vec<Update>) -> Self {
        Batch { updates }
    }
}

impl FromIterator<Update> for Batch {
    fn from_iter<I: IntoIterator<Item = Update>>(iter: I) -> Self {
        Batch {
            updates: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Batch {
    type Item = Update;
    type IntoIter = std::vec::IntoIter<Update>;
    fn into_iter(self) -> Self::IntoIter {
        self.updates.into_iter()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Update;
    type IntoIter = std::slice::Iter<'a, Update>;
    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_and_counts() {
        let b = Batch::new()
            .delete(EdgeId(3))
            .insert(vec![0, 1])
            .deletes([EdgeId(4), EdgeId(5)])
            .inserts([vec![2, 3], vec![4, 5]]);
        assert_eq!(b.len(), 6);
        assert_eq!(b.num_inserts(), 3);
        assert_eq!(b.num_deletes(), 3);
        assert!(b.as_slice()[0].is_delete());
        assert!(b.as_slice()[1].is_insert());
    }

    #[test]
    fn conversions_round_trip() {
        let updates = vec![Update::Insert(vec![1]), Update::Delete(EdgeId(9))];
        let b = Batch::from(updates.clone());
        let collected: Vec<Update> = b.clone().into_iter().collect();
        assert_eq!(collected, updates);
        let b2: Batch = updates.clone().into_iter().collect();
        assert_eq!(b, b2);
        assert!(!b.is_empty());
        assert!(Batch::new().is_empty());
    }
}
