//! The pbdmm network tier: a deployable server for the batch-dynamic
//! matching service.
//!
//! PRs 3–5 made the structure *servable in process* — group-commit
//! coalescing, a durable WAL, epoch-snapshot reads. This crate is the layer
//! that lets clients live **outside** the process:
//!
//! * [`proto`] — the versioned, length-prefixed wire protocol: an 8-byte
//!   magic/version handshake, then [`proto::Request`] /
//!   [`proto::Response`] frames with a streaming decoder that treats torn
//!   and hostile input with the WAL reader's rigor (lengths bounds-checked
//!   before buffering, truncation detected, never a panic).
//! * [`daemon`] — a std-only TCP daemon (one reader/writer thread pair per
//!   connection, no async runtime) funneling every connection into one
//!   [`ServiceHandle`]/[`QueryHandle`], so coalescing, WAL durability,
//!   epoch snapshots, and read-your-writes come for free; the wire tier
//!   adds admission control (connection cap + bounded per-connection
//!   in-flight window → [`proto::ErrorCode::Overloaded`], never an
//!   unbounded queue) and fault isolation (a protocol violation closes
//!   *that* connection only).
//! * [`client`] — a small blocking client: the handshake, pipelined
//!   request submission, and response correlation (epoch-event frames may
//!   interleave with responses; the client surfaces both).
//! * [`load`] — the multi-connection load generator behind `pbdmm load`:
//!   M concurrent connections drive the daemon with the same synthetic
//!   workload family as the in-process `pbdmm serve`, reporting the same
//!   throughput / ticket-latency / snapshot-staleness metrics so
//!   in-process vs over-the-wire overhead is directly comparable.
//!
//! # Quickstart (loopback)
//!
//! ```
//! use pbdmm_net::client::Client;
//! use pbdmm_net::daemon::{Daemon, DaemonConfig};
//! use pbdmm_matching::DynamicMatching;
//!
//! let daemon = Daemon::start(DynamicMatching::with_seed(7), DaemonConfig::default()).unwrap();
//! let addr = daemon.local_addr();
//! let stop = daemon.stop_handle();
//! let server = std::thread::spawn(move || daemon.run());
//!
//! let mut c = Client::connect(addr).unwrap();
//! let done = c.submit_updates(vec![pbdmm_graph::Update::Insert(vec![0, 1])]).unwrap();
//! assert_eq!(done.results.len(), 1);
//! let q = c.point_query(0).unwrap();
//! assert!(q.epoch >= done.epoch); // read your writes, over the wire
//!
//! stop.stop();
//! let report = server.join().unwrap();
//! assert_eq!(report.structure.num_edges(), 1);
//! ```
//!
//! [`ServiceHandle`]: pbdmm_service::ServiceHandle
//! [`QueryHandle`]: pbdmm_service::QueryHandle

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod load;
pub mod proto;

pub use client::{Client, Mirror};
pub use daemon::{Daemon, DaemonConfig, DaemonReport, StopHandle, WireCounters};
pub use load::{run_load, LoadConfig, LoadReport};
pub use proto::{ErrorCode, FrameError, Request, Response, UpdateResult, WireDelta, WireStats};
