//! Segmented-WAL recovery properties, end to end through the service.
//!
//! The contract under test: **checkpoint-load + tail-replay reconstructs
//! the exact state a full-history replay would** — same live edge ids
//! (including recycled ones), same matching, same storage occupancy, same
//! epoch — across seeds and both id-allocation modes. And recovery is
//! crash-tolerant at every byte: truncating the newest checkpoint falls
//! back to an older one, truncating the tail segment recovers the longest
//! committed prefix; neither ever turns into an error.
//!
//! The driver submits one update at a time and waits for its ticket, so
//! every logged batch is a singleton and batch `k` is exactly update `k`:
//! any recovered `next_seq` maps directly onto a prefix of the recorded
//! update stream, which a directly-driven twin replays for comparison.

use std::path::PathBuf;
use std::time::Duration;

use pbdmm_graph::edge::EdgeId;
use pbdmm_graph::update::Batch;
use pbdmm_graph::wal::WalMeta;
use pbdmm_matching::snapshot::Snapshots;
use pbdmm_matching::verify::check_invariants;
use pbdmm_matching::DynamicMatching;
use pbdmm_primitives::rng::SplitMix64;
use pbdmm_service::{
    recover_matching_from_dir, recover_sharded_matching, shard_dir, CoalescePolicy, ServiceConfig,
    WalConfig,
};

fn fresh(seed: u64, recycling: bool) -> DynamicMatching {
    let mut m = DynamicMatching::with_seed(seed);
    if recycling {
        m.set_recycle_ids(true);
    }
    m
}

fn tdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pbdmm_recovery_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Run a service over a fresh segmented WAL at `dir`, submit `updates`
/// random single updates (waiting on each, so batches are singletons),
/// and return the served structure plus the ops as singleton batches.
fn run_service(
    dir: &PathBuf,
    seed: u64,
    recycling: bool,
    updates: usize,
    every: u64,
) -> (DynamicMatching, Vec<Batch>) {
    let meta = WalMeta {
        structure: "matching".into(),
        seed,
        ids_recycling: recycling,
    };
    let mut wal = WalConfig::dir(dir, meta);
    wal.checkpoint_every = Some(every);
    let svc = ServiceConfig::builder()
        .policy(CoalescePolicy {
            max_batch: 4,
            max_delay: Duration::ZERO,
        })
        .wal(wal)
        .start(fresh(seed, recycling))
        .expect("start service on fresh dir");
    let h = svc.handle();
    let mut rng = SplitMix64::new(seed ^ 0xD1CE);
    let mut live: Vec<EdgeId> = Vec::new();
    let mut ops = Vec::new();
    for _ in 0..updates {
        if !live.is_empty() && rng.bounded(10) < 4 {
            let id = live.swap_remove(rng.bounded(live.len() as u64) as usize);
            h.delete(id).wait().expect("delete own id");
            ops.push(Batch::new().delete(id));
        } else {
            let a = rng.bounded(40) as u32;
            let edge = vec![a, a + 1 + rng.bounded(5) as u32];
            let c = h.insert(edge.clone()).wait().expect("insert");
            live.push(c.done.id());
            ops.push(Batch::new().insert(edge));
        }
    }
    drop(h);
    let (m, stats) = svc.shutdown();
    assert!(stats.checkpoints > 0, "interval {every} never checkpointed");
    assert_eq!(stats.updates as usize, updates);
    (m, ops)
}

/// The full-replay reference: drive a fresh same-seeded twin through the
/// recorded singleton batches directly.
fn replay_prefix(seed: u64, recycling: bool, ops: &[Batch]) -> DynamicMatching {
    let mut m = fresh(seed, recycling);
    for b in ops {
        m.apply(b.clone()).expect("recorded op replays");
    }
    m
}

/// Exact-state equality: ids (occupancy included), matching, snapshot
/// (epoch, edges, matched pairs).
fn assert_same(a: &DynamicMatching, b: &DynamicMatching) {
    assert_eq!(a.storage_stats(), b.storage_stats());
    let mut ia = a.structure().edges.ids().to_vec();
    let mut ib = b.structure().edges.ids().to_vec();
    ia.sort_unstable();
    ib.sort_unstable();
    assert_eq!(ia, ib, "live edge ids must agree exactly");
    assert_eq!(Snapshots::snapshot(a), Snapshots::snapshot(b));
}

/// The newest file in `dir` with the given extension, with its sequence
/// (parsed off the `NNNNNN` stem).
fn newest(dir: &PathBuf, ext: &str) -> (u64, PathBuf) {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == ext))
        .collect();
    files.sort();
    let path = files
        .pop()
        .unwrap_or_else(|| panic!("no .{ext} in {dir:?}"));
    let seq = path
        .file_stem()
        .and_then(|s| s.to_str())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable segment name {path:?}"));
    (seq, path)
}

#[test]
fn checkpoint_plus_tail_equals_full_replay_across_seeds_and_id_modes() {
    for seed in [3u64, 17, 99] {
        for recycling in [false, true] {
            let dir = tdir(&format!("prop_{seed}_{recycling}"));
            let (served, ops) = run_service(&dir, seed, recycling, 200, 48);
            check_invariants(&served).unwrap();

            let rec = recover_matching_from_dir(&dir, false).expect("recover");
            let ckpt = rec.checkpoint.expect("a checkpoint must have been used");
            assert!(ckpt > 0 && ckpt < 200, "checkpoint {ckpt} out of range");
            assert_eq!(rec.next_seq, 200, "every committed batch reconstructs");
            assert!(!rec.truncated);
            check_invariants(&rec.structure).unwrap();
            // Same state as the structure the service handed back ...
            assert_same(&rec.structure, &served);
            // ... and as a genuine full-history replay of the update
            // stream, ids included — checkpoint restore plus tail replay
            // is indistinguishable from replaying everything.
            let full = replay_prefix(seed, recycling, &ops);
            assert_same(&rec.structure, &full);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn torn_newest_checkpoint_falls_back_at_every_byte() {
    let dir = tdir("torn_ckpt");
    let (served, _ops) = run_service(&dir, 7, false, 120, 40);
    let (_, ckpt_path) = newest(&dir, "ckpt");
    let orig = std::fs::read(&ckpt_path).unwrap();
    assert!(!orig.is_empty());
    // Every proper truncation of the newest checkpoint: recovery must fall
    // back (to the older retained checkpoint, or — at cuts that leave the
    // `# end` trailer intact, like the final newline — still load it) and
    // always reconstruct the exact final state.
    for cut in 0..orig.len() {
        std::fs::write(&ckpt_path, &orig[..cut]).unwrap();
        let rec = recover_matching_from_dir(&dir, false)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: recovery errored: {e}"));
        assert_eq!(rec.next_seq, 120, "cut at byte {cut}");
        check_invariants(&rec.structure).unwrap();
        assert_same(&rec.structure, &served);
    }
    std::fs::write(&ckpt_path, &orig).unwrap();
    let rec = recover_matching_from_dir(&dir, false).unwrap();
    assert_same(&rec.structure, &served);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_segment_recovers_a_committed_prefix_at_every_byte() {
    let dir = tdir("torn_seg");
    let (served, ops) = run_service(&dir, 11, true, 130, 40);
    let (base, seg_path) = newest(&dir, "seg");
    assert!(base > 0 && base < 130, "tail segment base {base}");
    let orig = std::fs::read(&seg_path).unwrap();
    // Every truncation of the tail segment — mid-header, mid-batch,
    // mid-commit-marker — recovers the longest committed prefix, never
    // errors, and the recovered state equals a direct replay of exactly
    // that many updates.
    for cut in 0..orig.len() {
        std::fs::write(&seg_path, &orig[..cut]).unwrap();
        let rec = recover_matching_from_dir(&dir, false)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: recovery errored: {e}"));
        assert!(
            rec.next_seq >= base && rec.next_seq <= 130,
            "cut at byte {cut}: recovered {} batches",
            rec.next_seq
        );
        check_invariants(&rec.structure).unwrap();
        let reference = replay_prefix(11, true, &ops[..rec.next_seq as usize]);
        assert_same(&rec.structure, &reference);
    }
    std::fs::write(&seg_path, &orig).unwrap();
    let rec = recover_matching_from_dir(&dir, false).unwrap();
    assert_eq!(rec.next_seq, 130);
    assert_same(&rec.structure, &served);
    std::fs::remove_dir_all(&dir).ok();
}

/// Like [`run_service`], through the K-shard tier: per-shard segmented
/// logs under `dir/shard-0 .. shard-(K-1)`, singleton batches (each ticket
/// awaited), per-shard checkpoints at the shared global boundaries.
/// Returns shard 0's replica (all K agree at shutdown) plus the ops.
fn run_sharded_service(
    dir: &PathBuf,
    seed: u64,
    k: usize,
    updates: usize,
    every: u64,
) -> (DynamicMatching, Vec<Batch>) {
    let meta = WalMeta {
        structure: "matching".into(),
        seed,
        ids_recycling: false,
    };
    let mut wal = WalConfig::dir(dir, meta);
    wal.checkpoint_every = Some(every);
    wal.sync = false;
    let (svc, _query) = ServiceConfig::builder()
        .policy(CoalescePolicy {
            max_batch: 4,
            max_delay: Duration::ZERO,
        })
        .shards(k)
        .wal(wal)
        .start_sharded(move || fresh(seed, false))
        .expect("start sharded service on fresh dir");
    let h = svc.handle();
    let mut rng = SplitMix64::new(seed ^ 0xD1CE);
    let mut live: Vec<EdgeId> = Vec::new();
    let mut ops = Vec::new();
    for _ in 0..updates {
        if !live.is_empty() && rng.bounded(10) < 4 {
            let id = live.swap_remove(rng.bounded(live.len() as u64) as usize);
            h.delete(id).wait().expect("delete own id");
            ops.push(Batch::new().delete(id));
        } else {
            let a = rng.bounded(40) as u32;
            let edge = vec![a, a + 1 + rng.bounded(5) as u32];
            let c = h.insert(edge.clone()).wait().expect("insert");
            live.push(c.done.id());
            ops.push(Batch::new().insert(edge));
        }
    }
    drop(h);
    let (mut replicas, stats) = svc.shutdown();
    assert!(
        stats.service.checkpoints > 0,
        "interval {every} never checkpointed"
    );
    assert_eq!(stats.service.updates as usize, updates);
    (replicas.remove(0), ops)
}

#[test]
fn torn_one_shard_tail_recovers_a_consistent_cut_at_every_byte() {
    // SIGKILL-style: ONE shard's tail segment is truncated at every byte
    // offset while the other shards' logs stay clean and complete.
    // Recovery must land every replica on the same **consistency cut** —
    // the longest prefix committed on ALL shards — so no shard is ever
    // visibly ahead of the recovered global epoch, and the recovered state
    // must equal a direct replay of exactly that prefix.
    // Not a multiple of the checkpoint interval, so the newest segment
    // holds committed batches (an aligned count would rotate to an empty
    // tail and the truncation sweep would fuzz only a header).
    let (k, seed, updates) = (3usize, 13u64, 78usize);
    let dir = tdir("torn_shard");
    let (served, ops) = run_sharded_service(&dir, seed, k, updates, 24);
    check_invariants(&served).unwrap();
    let victim = shard_dir(&dir, 1);
    let (base, seg_path) = newest(&victim, "seg");
    assert!(
        base > 0 && base < updates as u64,
        "tail segment base {base}"
    );
    let orig = std::fs::read(&seg_path).unwrap();
    for cut in 0..orig.len() {
        std::fs::write(&seg_path, &orig[..cut]).unwrap();
        let rec = recover_sharded_matching(&dir, k, false, false)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: sharded recovery errored: {e}"));
        assert!(
            rec.next_seq >= base && rec.next_seq <= updates as u64,
            "cut at byte {cut}: recovered {} batches",
            rec.next_seq
        );
        assert_eq!(rec.shards.len(), k);
        let reference = replay_prefix(seed, false, &ops[..rec.next_seq as usize]);
        for (s, r) in rec.shards.iter().enumerate() {
            check_invariants(r)
                .unwrap_or_else(|e| panic!("cut at byte {cut}: shard {s} invariants: {e}"));
            // Every replica — including the ones whose logs run past the
            // cut — stops at the cut: the torn shard can never observe a
            // peer ahead of the recovered global epoch.
            assert_same(r, &reference);
        }
    }
    std::fs::write(&seg_path, &orig).unwrap();
    let rec = recover_sharded_matching(&dir, k, false, false).unwrap();
    assert_eq!(rec.next_seq, updates as u64);
    for r in &rec.shards {
        assert_same(r, &served);
    }
    std::fs::remove_dir_all(&dir).ok();
}
