//! Replay an oblivious [`Workload`] against any [`BatchDynamic`].
//!
//! Workloads reference edges by universe index; matchers hand out
//! [`EdgeId`]s at insertion time. The driver owns that mapping and reports
//! aggregate cost, so experiments drive the paper's algorithm and every
//! baseline through identical update streams. Each schedule step is rendered
//! as one mixed [`crate::api::Batch`] (deletions then insertions) and goes
//! through a single [`BatchDynamic::apply`] call.

use pbdmm_graph::edge::EdgeId;
use pbdmm_graph::workload::Workload;

use crate::api::BatchDynamic;

/// Result of replaying a workload.
#[derive(Debug, Clone, Default)]
pub struct DriveReport {
    /// Total edge updates applied (inserts + deletes).
    pub updates: u64,
    /// Batches applied.
    pub batches: u64,
    /// Wall-clock seconds for the whole replay.
    pub seconds: f64,
    /// Model work delta over the replay.
    pub work: u64,
    /// Peak live edge count observed between batches.
    pub peak_edges: usize,
    /// Final matching size.
    pub final_matching: usize,
}

impl DriveReport {
    /// Wall-clock throughput in updates per second.
    pub fn updates_per_second(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.updates as f64 / self.seconds
        }
    }

    /// Metered work per update.
    pub fn work_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.work as f64 / self.updates as f64
        }
    }
}

/// Replay `workload` against `matcher`, optionally invoking `check` after
/// every batch (used by tests to assert invariants/maximality).
pub fn run_workload_with<M, F>(matcher: &mut M, workload: &Workload, mut check: F) -> DriveReport
where
    M: BatchDynamic,
    F: FnMut(&M),
{
    let work_before = matcher.work();
    let start = std::time::Instant::now();
    let mut assigned: Vec<Option<EdgeId>> = vec![None; workload.universe.len()];
    let mut report = DriveReport::default();
    for step in &workload.steps {
        let batch = step.to_batch(&workload.universe, |ui| {
            assigned[ui].expect("workload deletes an edge it never inserted")
        });
        report.updates += batch.len() as u64;
        let outcome = matcher
            .apply(batch)
            .expect("validated workload produced an invalid batch");
        for (&ui, &id) in step.insert.iter().zip(&outcome.inserted) {
            assigned[ui] = Some(id);
        }
        report.batches += 1;
        report.peak_edges = report.peak_edges.max(matcher.num_edges());
        check(&*matcher);
    }
    report.seconds = start.elapsed().as_secs_f64();
    report.work = matcher.work() - work_before;
    report.final_matching = matcher.matching_size();
    report
}

/// Replay without per-batch checks.
pub fn run_workload<M: BatchDynamic>(matcher: &mut M, workload: &Workload) -> DriveReport {
    run_workload_with(matcher, workload, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{NaiveDynamic, RecomputeMatching};
    use crate::DynamicMatching;
    use pbdmm_graph::{gen, workload};

    #[test]
    fn drive_dynamic_empty_to_empty() {
        let g = gen::erdos_renyi(100, 500, 3);
        let w = workload::insert_then_delete(&g, 64, workload::DeletionOrder::Uniform, 5);
        let mut m = DynamicMatching::with_seed(1);
        let report = run_workload(&mut m, &w);
        assert_eq!(report.updates, 1000);
        assert_eq!(m.num_edges(), 0);
        assert!(report.peak_edges >= 500);
        assert!(report.work > 0);
    }

    #[test]
    fn drive_all_contenders_same_workload() {
        // Acceptance: every contender runs through the BatchDynamic trait in
        // run_workload — including the set-cover element adapter, which is
        // exercised in the setcover crate (it depends on this one).
        let g = gen::erdos_renyi(80, 300, 4);
        let w = workload::churn(&g, 50, 6);
        let mut a = DynamicMatching::with_seed(2);
        let mut b = RecomputeMatching::with_seed(2);
        let mut c = NaiveDynamic::new();
        for r in [
            run_workload(&mut a, &w),
            run_workload(&mut b, &w),
            run_workload(&mut c, &w),
        ] {
            assert_eq!(r.updates, 600);
            assert_eq!(r.final_matching, 0);
        }
    }

    #[test]
    fn mixed_steps_apply_as_one_batch() {
        // A churn workload has steps with both inserts and deletes; the
        // driver must apply them as one batch (batch count == step count).
        let g = gen::erdos_renyi(60, 240, 7);
        let w = workload::churn(&g, 40, 8);
        assert!(w
            .steps
            .iter()
            .any(|s| !s.insert.is_empty() && !s.delete.is_empty()));
        let mut m = DynamicMatching::with_seed(3);
        let r = run_workload(&mut m, &w);
        assert_eq!(r.batches, w.num_steps() as u64);
        assert_eq!(m.stats().batches, w.num_steps() as u64);
    }

    #[test]
    fn report_rates_handle_degenerate_inputs() {
        let r = DriveReport::default();
        assert_eq!(r.updates_per_second(), 0.0);
        assert_eq!(r.work_per_update(), 0.0);
        let r = DriveReport {
            updates: 100,
            seconds: 2.0,
            work: 500,
            ..Default::default()
        };
        assert!((r.updates_per_second() - 50.0).abs() < 1e-9);
        assert!((r.work_per_update() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn per_batch_check_is_invoked() {
        let g = gen::path(20);
        let w = workload::insert_then_delete(&g, 5, workload::DeletionOrder::Fifo, 7);
        let mut m = DynamicMatching::with_seed(3);
        let mut calls = 0;
        run_workload_with(&mut m, &w, |_| calls += 1);
        assert_eq!(calls as u64, w.num_steps() as u64);
    }
}
